"""Per-view sharding of the entity space across N worker threads.

Every classification view served by a :class:`~repro.serve.server.ViewServer`
is split into ``num_shards`` hash partitions of its entity key space.  Each
:class:`Shard` bundles a private entity store, a private maintainer (same
strategy/approach as the source view), a private water-band result cache —
and, crucially, a **dedicated worker thread**: all access to a shard's state,
reads and writes alike, runs on that one thread.  That single rule makes the
whole structure free of data races without any per-record locking, keeps the
cost ledgers exact, and means a heavy read on one shard never stalls the
others.

Cross-shard operations (``ALL_MEMBERS``-style queries, ``top_k``, batched
reads spanning partitions) follow a **scatter/gather** path: work is split by
partition, submitted to every involved shard's worker concurrently, and the
partial answers are merged.  Coherence across shards (so a gather never mixes
model epochs) is the :class:`~repro.serve.server.ViewServer`'s job via its
readers/writer lock; this module only guarantees per-shard linearizability.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from repro.core.maintainers.base import ViewMaintainer
from repro.core.stores.base import EntityStore
from repro.exceptions import KeyNotFoundError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector
from repro.serve.cache import WaterBandResultCache

__all__ = ["Shard", "ShardSet", "shard_index"]


def shard_index(entity_id: object, num_shards: int) -> int:
    """The partition an entity key belongs to (stable **across** processes).

    Keyed on CRC-32 of the key's ``repr`` rather than ``hash()``: Python
    randomizes string hashes per process, and the checkpoint/recovery
    subsystem snapshots state *per shard* — a restored process must route
    every entity to the shard whose snapshot holds it.
    """
    return zlib.crc32(repr(entity_id).encode("utf-8")) % num_shards


class Shard:
    """One hash partition: store + maintainer + cache + its worker thread."""

    def __init__(self, index: int, maintainer: ViewMaintainer, cache_capacity: int = 100_000):
        self.index = index
        self.maintainer = maintainer
        self.cache = WaterBandResultCache(
            band_supplier=self._band,
            reorg_supplier=lambda: self.maintainer.stats.reorganizations,
            capacity=cache_capacity,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"hazy-shard-{index}"
        )

    def _band(self):
        tracker = getattr(self.maintainer, "tracker", None)
        return tracker.band() if tracker is not None else None

    # -- the worker-thread rule --------------------------------------------------------

    def submit(self, fn: Callable, *args) -> Future:
        """Run ``fn(*args)`` on this shard's worker thread."""
        return self._executor.submit(fn, *args)

    def call(self, fn: Callable, *args):
        """Run ``fn(*args)`` on the worker thread and wait for the result."""
        return self.submit(fn, *args).result()

    def shutdown(self) -> None:
        """Stop the worker thread (pending work completes first)."""
        self._executor.shutdown(wait=True)

    # -- shard-local operations (must run on the worker thread) ---------------------------

    def read_batch_local(self, entity_ids: Sequence[object]) -> dict[object, object]:
        """Cache-first batched Single Entity read over this partition.

        Unknown ids resolve to the :class:`~repro.exceptions.KeyNotFoundError`
        *instance* instead of raising, so one bad key cannot fail the whole
        coalesced round (the batcher re-raises per waiter).
        """
        results: dict[object, object] = {}
        misses: list[object] = []
        for entity_id in entity_ids:
            label = self.cache.lookup(entity_id)
            if label is not None:
                results[entity_id] = label
            else:
                misses.append(entity_id)
        if misses:
            try:
                results.update(self.maintainer.read_many(misses, on_record=self.cache.observe))
            except KeyNotFoundError:
                # Rare path: retry key-by-key so only the bad ids fail.
                for entity_id in misses:
                    try:
                        results[entity_id] = self.maintainer.read_many(
                            [entity_id], on_record=self.cache.observe
                        )[entity_id]
                    except KeyNotFoundError as error:
                        results[entity_id] = error
        return results

    def all_members_local(self, label: int) -> list[object]:
        """This partition's contribution to an All Members read."""
        return self.maintainer.read_all_members(label)

    def read_range_local(
        self,
        label: int,
        low: object | None,
        high: object | None,
        include_low: bool,
        include_high: bool,
    ) -> list[object]:
        """This partition's contribution to a pushed-down key-range read."""
        return self.maintainer.read_range(
            label, low, high, include_low=include_low, include_high=include_high
        )

    def top_k_local(self, k: int, label: int) -> list[tuple[object, float]]:
        """The ``k`` entities of this partition deepest inside class ``label``."""
        model = self.maintainer.current_model
        store = self.maintainer.store
        tie = itertools.count()
        heap: list[tuple[float, int, object]] = []
        for record in store.scan_all():
            store.charge_dot_product(record.features)
            margin = model.margin(record.features)
            score = margin if label == 1 else -margin
            item = (score, next(tie), record.entity_id)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item[0] > heap[0][0]:
                heapq.heapreplace(heap, item)
        ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
        sign_ = 1.0 if label == 1 else -1.0
        return [(entity_id, sign_ * score) for score, _, entity_id in ranked]

    def apply_models_local(self, models: Sequence[LinearModel]) -> None:
        """Apply a batch of successive models to this partition."""
        self.maintainer.apply_model_batch(models)

    def add_entity_local(self, entity_id: object, features: SparseVector) -> int:
        """Insert a new entity into this partition."""
        return self.maintainer.add_entity(entity_id, features)

    def export_state_local(self) -> dict[str, object]:
        """This partition's maintainer state (checkpoint write path)."""
        return self.maintainer.export_state()

    def import_state_local(self, state: dict[str, object]) -> None:
        """Restore this partition's maintainer from a snapshot (warm restart)."""
        self.maintainer.import_state(state)

    def remove_entity_local(self, entity_id: object) -> None:
        """Delete an entity from this partition (and its cache entry)."""
        self.cache.evict(entity_id)
        self.maintainer.remove_entity(entity_id)


class ShardSet:
    """The full partitioning of one view plus its scatter/gather machinery."""

    def __init__(self, shards: Sequence[Shard]):
        if not shards:
            raise ValueError("a ShardSet needs at least one shard")
        self.shards = list(shards)

    @classmethod
    def build(
        cls,
        entities: Iterable[tuple[object, SparseVector]],
        model: LinearModel,
        store_factory: Callable[[], EntityStore],
        maintainer_factory: Callable[[EntityStore], ViewMaintainer],
        num_shards: int = 4,
        cache_capacity: int = 100_000,
    ) -> "ShardSet":
        """Partition ``entities`` by key hash and bulk-load every shard under ``model``."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        partitions: list[list[tuple[object, SparseVector]]] = [[] for _ in range(num_shards)]
        for entity_id, features in entities:
            partitions[shard_index(entity_id, num_shards)].append((entity_id, features))
        shards = [
            Shard(index, maintainer_factory(store_factory()), cache_capacity=cache_capacity)
            for index in range(num_shards)
        ]
        # Bulk-load in parallel, one load per shard worker.
        loads = [
            shard.submit(shard.maintainer.bulk_load, partition, model.copy())
            for shard, partition in zip(shards, partitions)
        ]
        for future in loads:
            future.result()
        return cls(shards)

    @classmethod
    def restore(
        cls,
        shard_states: Sequence[dict[str, object]],
        store_factory: Callable[[], EntityStore],
        maintainer_factory: Callable[[EntityStore], ViewMaintainer],
        cache_capacity: int = 100_000,
    ) -> "ShardSet":
        """Rebuild a sharded view from per-shard snapshot states (warm restart).

        ``shard_states[i]`` restores shard ``i`` — assignment is preserved
        from the snapshot because eps values are only comparable within the
        shard that stored them (each shard reorganizes independently), and
        :func:`shard_index` is process-stable so routing still agrees.
        Imports run concurrently, one per shard worker.
        """
        shards = [
            Shard(index, maintainer_factory(store_factory()), cache_capacity=cache_capacity)
            for index in range(len(shard_states))
        ]
        imports = [
            shard.submit(shard.import_state_local, state)
            for shard, state in zip(shards, shard_states)
        ]
        for future in imports:
            future.result()
        return cls(shards)

    # -- routing --------------------------------------------------------------------------

    def shard_for(self, entity_id: object) -> Shard:
        """The shard owning ``entity_id``."""
        return self.shards[shard_index(entity_id, len(self.shards))]

    def partition_ids(self, entity_ids: Sequence[object]) -> dict[Shard, list[object]]:
        """Group a batch of entity keys by owning shard."""
        grouped: dict[Shard, list[object]] = {}
        for entity_id in entity_ids:
            grouped.setdefault(self.shard_for(entity_id), []).append(entity_id)
        return grouped

    # -- scatter/gather reads --------------------------------------------------------------

    def read_batch(self, entity_ids: Sequence[object]) -> dict[object, object]:
        """Scatter a batch of Single Entity reads, gather one id→label map.

        Unknown ids map to their ``KeyNotFoundError`` instance (per-key error
        isolation through the batcher); known ids map to their label.
        """
        futures = [
            shard.submit(shard.read_batch_local, ids)
            for shard, ids in self.partition_ids(entity_ids).items()
        ]
        results: dict[object, object] = {}
        for future in futures:
            results.update(future.result())
        return results

    def read_single(self, entity_id: object) -> int:
        """One Single Entity read routed to its owning shard."""
        shard = self.shard_for(entity_id)
        result = shard.call(shard.read_batch_local, [entity_id])[entity_id]
        if isinstance(result, BaseException):
            raise result
        return result

    def all_members(self, label: int = 1) -> list[object]:
        """Scatter an All Members read to every shard, gather the union."""
        futures = [shard.submit(shard.all_members_local, label) for shard in self.shards]
        members: list[object] = []
        for future in futures:
            members.extend(future.result())
        return members

    def range_scan(
        self,
        label: int = 1,
        low: object | None = None,
        high: object | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[object]:
        """Scatter a pushed-down ``class = label AND key in range`` read, gather the union.

        Each shard runs :meth:`~repro.core.maintainers.base.ViewMaintainer.read_range`
        over its own eps-clustered store — the key filter is applied *before*
        classification work, which is what makes this cheaper than gathering
        the full view and post-filtering.
        """
        futures = [
            shard.submit(
                shard.read_range_local, label, low, high, include_low, include_high
            )
            for shard in self.shards
        ]
        members: list[object] = []
        for future in futures:
            members.extend(future.result())
        return members

    def top_k(self, k: int, label: int = 1) -> list[tuple[object, float]]:
        """Global top-k by margin: per-shard top-k, then an n-way merge."""
        futures = [shard.submit(shard.top_k_local, k, label) for shard in self.shards]
        merged: list[tuple[object, float]] = []
        for future in futures:
            merged.extend(future.result())
        sign_ = 1.0 if label == 1 else -1.0
        merged.sort(key=lambda pair: sign_ * pair[1], reverse=True)
        return merged[:k]

    def contents(self) -> dict[object, int]:
        """The full view ``{id: label}`` across every shard."""
        futures = [shard.submit(shard.maintainer.contents) for shard in self.shards]
        combined: dict[object, int] = {}
        for future in futures:
            combined.update(future.result())
        return combined

    # -- writes (driven by the maintenance worker) ---------------------------------------

    def apply_model_batch(self, models: Sequence[LinearModel]) -> None:
        """Apply a batch of models to every shard concurrently; waits for all."""
        futures = [shard.submit(shard.apply_models_local, models) for shard in self.shards]
        for future in futures:
            future.result()

    def add_entity(self, entity_id: object, features: SparseVector) -> int:
        """Insert a new entity on its owning shard."""
        shard = self.shard_for(entity_id)
        return shard.call(shard.add_entity_local, entity_id, features)

    def remove_entity(self, entity_id: object) -> None:
        """Delete an entity from its owning shard."""
        shard = self.shard_for(entity_id)
        shard.call(shard.remove_entity_local, entity_id)

    # -- lifecycle / accounting --------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every shard worker."""
        for shard in self.shards:
            shard.shutdown()

    def count(self) -> int:
        """Total entities across shards."""
        return sum(shard.maintainer.store.count() for shard in self.shards)

    def simulated_seconds(self) -> float:
        """Sum of every shard ledger's simulated seconds."""
        return sum(shard.maintainer.store.stats.simulated_seconds for shard in self.shards)

    def simulated_read_seconds(self) -> float:
        """Simulated seconds spent on reads, summed across shards."""
        return sum(shard.maintainer.stats.simulated_read_seconds for shard in self.shards)

    def cache_stats(self) -> dict[str, int]:
        """Aggregated result-cache counters (summed over whatever keys shards report)."""
        totals: dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.cache.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def per_shard_stats(self) -> list[dict[str, float]]:
        """Per-shard ledger and cache counters, indexed by shard position.

        This is the ground truth the aggregated registry metrics must
        reconcile against: summing any key over this list equals the
        corresponding total reported elsewhere.
        """
        rows: list[dict[str, float]] = []
        for shard in self.shards:
            cache = shard.cache.stats()
            rows.append(
                {
                    "entities": shard.maintainer.store.count(),
                    "simulated_seconds_total": shard.maintainer.store.stats.simulated_seconds,
                    "simulated_read_seconds_total": shard.maintainer.stats.simulated_read_seconds,
                    "cache_hits_total": cache["hits_total"],
                    "cache_misses_total": cache["misses_total"],
                    "cache_invalidations_total": cache["invalidations_total"],
                    "cache_entries": cache["entries"],
                }
            )
        return rows

    def __len__(self) -> int:
        return len(self.shards)
