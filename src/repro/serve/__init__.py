"""``repro.serve`` — the concurrent serving subsystem.

The paper's promise is that classification views stay queryable at
interactive speed while entities and training examples stream in; this
package is the production-shaped realization of that promise for one process:
a front-end that many client threads can hammer concurrently while a
background pipeline keeps the view maintained.

Module map
----------

``server``
    :class:`~repro.serve.server.ViewServer` — the front-end.  Reads
    (``label_of``, ``all_members``, ``top_k``, ``classify``) and writes
    (``insert_entity``, ``insert_example``), epoch-tagged snapshot reads,
    per-client :class:`~repro.serve.server.ClientSession` monotonicity,
    attachment to a live ``ClassificationView`` (SQL triggers divert into the
    pipeline), and ``checkpoint(path)`` — a quiesce-free consistent snapshot
    of the whole serving state (see :mod:`repro.persist`); ``restore``
    warm-starts a server from one.
``sharding``
    :class:`~repro.serve.sharding.ShardSet` — the entity space
    hash-partitioned across N worker threads, one store + maintainer + cache
    per shard; scatter/gather for ``ALL_MEMBERS``-style and top-k queries.
``batcher``
    :class:`~repro.serve.batcher.ReadBatcher` — coalesces concurrent Single
    Entity reads into batched per-shard ``read_many`` rounds, amortizing the
    per-statement overhead that caps read throughput in Figure 5.
``maintenance``
    :class:`~repro.serve.maintenance.MaintenanceWorker` — drains a bounded
    write queue in batches; training runs outside the lock readers take, so
    reads never block behind model retraining.
``cache``
    :class:`~repro.serve.cache.WaterBandResultCache` — serves repeat reads
    straight from cached ε values while the entity sits outside the low/high
    water band (Figure 8), invalidating only on reorganization.
``sync``
    :class:`~repro.serve.sync.ReadWriteLock` and
    :class:`~repro.serve.sync.EpochClock` — the snapshot-consistency
    machinery: reads observe fully applied epochs, writes resolve to the
    epoch at which they became visible.
``requests``
    :class:`~repro.serve.requests.WriteOp` / ``WriteTicket`` — the normalized
    write operations flowing through the queue and the visibility handles
    handed back to producers.
"""

from repro.serve.batcher import AdaptiveBatchWindow, ReadBatcher
from repro.serve.cache import WaterBandResultCache
from repro.serve.maintenance import MaintenanceWorker
from repro.serve.requests import WriteKind, WriteOp, WriteTicket
from repro.serve.server import ClientSession, ViewServer
from repro.serve.sharding import Shard, ShardSet, shard_index
from repro.serve.sync import EpochClock, ReadWriteLock, SessionRegistry

__all__ = [
    "ViewServer",
    "ClientSession",
    "SessionRegistry",
    "ShardSet",
    "Shard",
    "shard_index",
    "ReadBatcher",
    "AdaptiveBatchWindow",
    "MaintenanceWorker",
    "WaterBandResultCache",
    "ReadWriteLock",
    "EpochClock",
    "WriteKind",
    "WriteOp",
    "WriteTicket",
]
