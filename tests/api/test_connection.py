"""The ``repro.connect()`` facade: cursors, per-connection sessions, lifecycle."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = (
    "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
    "ENTITIES FROM papers KEY id "
    "LABELS FROM paper_area LABEL label "
    "EXAMPLES FROM example_papers KEY id LABEL label "
    "FEATURE FUNCTION tf_bag_of_words USING SVM"
)


def build_connection(count: int = 60, seed: int = 23):
    conn = repro.connect()
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    documents = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=seed
    ).generate_list(count)
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    conn.execute(VIEW_DDL)
    return conn, documents


class TestCursor:
    def test_execute_returns_cursor_with_rows(self):
        conn, documents = build_connection()
        cursor = conn.execute("SELECT id FROM papers ORDER BY id LIMIT 3")
        assert cursor.rowcount == 3
        assert cursor.description == ["id"]
        assert cursor.fetchone() == {"id": documents[0].entity_id}
        assert len(cursor.fetchall()) == 2
        assert cursor.fetchone() is None
        conn.close()

    def test_fetchmany_and_iteration(self):
        conn, _ = build_connection()
        cursor = conn.execute("SELECT id FROM papers ORDER BY id LIMIT 5")
        assert len(cursor.fetchmany(2)) == 2
        assert len(list(cursor)) == 3
        conn.close()

    def test_scalar_and_executemany(self):
        conn, _ = build_connection()
        conn.execute("CREATE TABLE notes (id integer PRIMARY KEY, body text)")
        cursor = conn.executemany(
            "INSERT INTO notes (id, body) VALUES (?, ?)", [(1, "a"), (2, "b")]
        )
        assert cursor.rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM notes").scalar() == 2
        conn.close()

    def test_cursor_context_manager_closes_cursor_only(self):
        conn, _ = build_connection(count=20)
        with conn.execute("SELECT id FROM papers ORDER BY id LIMIT 3") as cursor:
            assert cursor.description == ["id"]
            assert cursor.rowcount == 3
        assert cursor.closed
        assert cursor.fetchone() is None  # result set released
        with pytest.raises(ConfigurationError, match="cursor is closed"):
            cursor.execute("SELECT COUNT(*) FROM papers")
        with pytest.raises(ConfigurationError, match="cursor is closed"):
            cursor.executemany("INSERT INTO papers (id, title) VALUES (?, ?)", [(999, "x")])
        # The connection itself stays usable — only the cursor handle died.
        assert not conn.closed
        assert conn.execute("SELECT COUNT(*) FROM papers").scalar() == 20
        conn.close()

    def test_cursor_close_is_idempotent(self):
        conn, _ = build_connection(count=20)
        cursor = conn.execute("SELECT id FROM papers LIMIT 1")
        cursor.close()
        cursor.close()
        assert cursor.closed
        conn.close()

    def test_description_empty_for_dml(self):
        conn, _ = build_connection(count=20)
        cursor = conn.execute("CREATE TABLE d (id integer PRIMARY KEY)")
        assert cursor.description == []
        cursor = conn.execute("INSERT INTO d (id) VALUES (7)")
        assert cursor.description == []
        assert cursor.rowcount == 1
        conn.close()


class TestSessions:
    def test_sql_read_your_writes(self):
        conn, documents = build_connection()
        conn.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        for doc in documents[:20]:
            conn.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                (doc.entity_id, "database" if doc.label == 1 else "other"),
            )
        # No explicit flush: the connection's session waits on its own writes.
        conn.execute("SELECT class FROM labeled_papers WHERE id = ?", (documents[0].entity_id,))
        session = conn.session("labeled_papers")
        assert session.last_epoch >= 1
        server = conn.engine.view("labeled_papers").server
        assert session.last_epoch <= server.epoch
        conn.close()

    def test_two_connections_are_independent_timelines(self):
        conn, documents = build_connection()
        conn.execute("SERVE VIEW labeled_papers")
        other = repro.connect(engine=conn.engine)
        doc = documents[0]
        conn.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)", (doc.entity_id, "database")
        )
        conn.execute("SELECT class FROM labeled_papers WHERE id = ?", (doc.entity_id,))
        assert conn.session("labeled_papers") is not other.session("labeled_papers")
        other.close()
        # Closing a wrapping connection must not stop the serving.
        assert conn.engine.view("labeled_papers").server is not None
        conn.close()
        assert conn.engine.view("labeled_papers").server is None

    def test_scan_reads_wait_for_own_writes(self):
        conn, documents = build_connection()
        conn.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        doc = documents[0]
        conn.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)", (doc.entity_id, "database")
        )
        # A full-view SELECT (scan-shaped) must also wait for the pending
        # write before answering — not just point/members/topk reads.
        conn.execute("SELECT id, class FROM labeled_papers")
        session = conn.session("labeled_papers")
        assert session._pending is None  # the scan consumed the ticket
        assert session.last_epoch >= 1
        conn.close()

    def test_session_requires_serving(self):
        conn, _ = build_connection(count=20)
        with pytest.raises(ConfigurationError, match="not being served"):
            conn.session("labeled_papers")
        conn.close()


class TestLifecycle:
    def test_close_quiesces_served_views_and_is_idempotent(self):
        conn, _ = build_connection(count=30)
        conn.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        assert conn.engine.view("labeled_papers").server is not None
        conn.close()
        assert conn.engine.view("labeled_papers").server is None
        conn.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            conn.execute("SELECT COUNT(*) FROM papers")

    def test_context_manager_closes(self):
        with build_connection(count=20)[0] as conn:
            conn.execute("SERVE VIEW labeled_papers")
        assert conn.closed
        assert conn.engine.view("labeled_papers").server is None

    def test_connect_argument_validation(self):
        conn, _ = build_connection(count=20)
        other_db = repro.Database()
        with pytest.raises(ConfigurationError):
            repro.connect(database=other_db, engine=conn.engine)
        with pytest.raises(ConfigurationError):
            repro.connect(engine=conn.engine, architecture="ondisk")
        with pytest.raises(ConfigurationError):
            repro.connect(database=other_db, cost_model=repro.CostModel())
        conn.close()

    def test_connect_over_existing_database(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        conn = repro.connect(database=db)
        assert conn.database is db
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0
        conn.close()
