"""End-to-end tests: a ViewServer attached to a live engine view over SQL."""

from __future__ import annotations

import pytest

from repro import Database, HazyEngine
from repro.core.view import view_contents
from repro.exceptions import ViewDefinitionError
from repro.workloads.synth_text import SparseCorpusGenerator


@pytest.fixture
def served_setup():
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    corpus = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=21
    ).generate_list(160)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(
        """
        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL label
        EXAMPLES FROM Example_Papers KEY id LABEL label
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
        """
    )
    view = engine.view("Labeled_Papers")
    for doc in corpus[:25]:
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )
    return db, engine, view, corpus


def word_label(doc):
    return "database" if doc.label == 1 else "other"


def direct_oracle(view):
    """Expected contents from the view's *current* trainer model and features."""
    return view_contents(view.entity_snapshot(), view.trainer.model.copy())


def server_oracle(server):
    entities = [
        (record.entity_id, record.features)
        for shard in server.shards.shards
        for record in shard.call(lambda s=shard: list(s.maintainer.store.scan_all()))
    ]
    return view_contents(entities, server.trainer.model.copy())


def test_sql_writes_flow_through_the_pipeline(served_setup):
    db, engine, view, corpus = served_setup
    server = engine.serve("Labeled_Papers", num_shards=4)
    try:
        for doc in corpus[25:45]:
            db.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                (doc.entity_id, word_label(doc)),
            )
        db.execute("INSERT INTO papers (id, title) VALUES (?, ?)", (9001, "new paper"))
        server.flush(timeout=30)
        assert server.epoch > 0
        assert server.shards.count() == len(corpus) + 1
        assert server.contents() == server_oracle(server)
        # SQL reads over the view go through the server while attached.
        total = db.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar()
        assert total == len(corpus) + 1
    finally:
        server.close(timeout=30)


def test_sql_update_and_delete_while_serving(served_setup):
    db, engine, view, corpus = served_setup
    server = engine.serve("Labeled_Papers", num_shards=2)
    try:
        # Flip one example's label, delete another, rewrite an entity.
        db.execute("UPDATE example_papers SET label = 'other' WHERE id = ?", (corpus[0].entity_id,))
        db.execute("DELETE FROM example_papers WHERE id = ?", (corpus[1].entity_id,))
        db.execute("UPDATE papers SET title = 'rewritten abstract' WHERE id = ?", (corpus[2].entity_id,))
        db.execute("DELETE FROM papers WHERE id = ?", (corpus[3].entity_id,))
        server.flush(timeout=30)
        assert server.shards.count() == len(corpus) - 1
        assert server.contents() == server_oracle(server)
    finally:
        server.close(timeout=30)


def test_reads_while_serving(served_setup):
    db, engine, view, corpus = served_setup
    server = engine.serve("Labeled_Papers", num_shards=4)
    try:
        oracle = server_oracle(server)
        # View-level reads delegate to the server while attached.
        assert view.label_of(corpus[0].entity_id) == oracle[corpus[0].entity_id]
        assert sorted(view.members(1)) == sorted(k for k, v in oracle.items() if v == 1)
        top = server.top_k(5)
        assert len(top) == 5
        # classify() of an existing row matches the stored label's model side.
        label = server.classify({"id": corpus[0].entity_id, "title": corpus[0].text})
        assert label in (-1, 1)
    finally:
        server.close(timeout=30)


def test_close_replays_entity_churn_in_order(served_setup):
    """An entity inserted then deleted while served must stay deleted after
    close, and repeated updates of one entity must not break the resync."""
    db, engine, view, corpus = served_setup
    server = engine.serve("Labeled_Papers", num_shards=2)
    db.execute("INSERT INTO papers (id, title) VALUES (?, ?)", (8801, "short lived"))
    server.flush(timeout=30)
    db.execute("DELETE FROM papers WHERE id = ?", (8801,))
    target = corpus[0].entity_id
    db.execute("UPDATE papers SET title = 'first rewrite' WHERE id = ?", (target,))
    db.execute("UPDATE papers SET title = 'second rewrite' WHERE id = ?", (target,))
    server.close(timeout=30)
    assert view.server is None
    assert 8801 not in view.maintainer.contents()  # not resurrected by resync
    assert view.maintainer.store.count() == len(corpus)
    assert view.maintainer.contents() == direct_oracle(view)
    assert not db.table("papers").triggers.has_dispatcher


def test_double_serve_rejected(served_setup):
    _, engine, _, _ = served_setup
    server = engine.serve("Labeled_Papers")
    try:
        with pytest.raises(ViewDefinitionError):
            engine.serve("Labeled_Papers")
    finally:
        server.close(timeout=30)


def test_close_hands_back_a_consistent_view(served_setup):
    db, engine, view, corpus = served_setup
    server = engine.serve("Labeled_Papers", num_shards=4)
    for doc in corpus[25:40]:
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, word_label(doc)),
        )
    db.execute("INSERT INTO papers (id, title) VALUES (?, ?)", (7777, "late arrival"))
    db.execute("DELETE FROM papers WHERE id = ?", (corpus[5].entity_id,))
    server.close(timeout=30)

    assert view.server is None
    # The direct maintainer caught up with everything the server applied.
    assert view.maintainer.contents() == direct_oracle(view)
    assert view.maintainer.store.count() == len(corpus)  # +1 added, -1 removed
    # Inline triggers are live again: another insert maintains the view directly.
    doc = corpus[41]
    db.execute(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        (doc.entity_id, word_label(doc)),
    )
    assert view.maintainer.contents() == direct_oracle(view)
    # And the trigger dispatchers were removed.
    assert not db.table("papers").triggers.has_dispatcher
    assert not db.table("example_papers").triggers.has_dispatcher
