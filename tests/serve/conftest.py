"""Shared fixtures for the serving-subsystem tests."""

from __future__ import annotations

import random

import pytest

from repro.core.maintainers import HazyEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.serve import ViewServer
from repro.workloads.synth_text import SparseCorpusGenerator


@pytest.fixture
def serve_corpus() -> list:
    """A deterministic corpus sized for concurrency tests."""
    generator = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=13
    )
    return generator.generate_list(240)


def warm_trainer_for(corpus, count: int = 60, seed: int = 2) -> SGDTrainer:
    """An SGD trainer warmed on a sample of the corpus."""
    trainer = SGDTrainer(loss="svm", seed=1)
    rng = random.Random(seed)
    for _ in range(count):
        doc = corpus[rng.randrange(len(corpus))]
        trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))
    return trainer


def build_standalone_server(corpus, num_shards: int = 4, **server_options) -> ViewServer:
    """A ViewServer over the corpus, no database attached (main-memory shards)."""
    trainer = warm_trainer_for(corpus)
    return ViewServer(
        entities=[(doc.entity_id, doc.features) for doc in corpus],
        model=trainer.model.copy(),
        trainer=trainer,
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=1.0),
        maintainer_factory=lambda store: HazyEagerMaintainer(store, alpha=1.0),
        num_shards=num_shards,
        **server_options,
    )


@pytest.fixture
def standalone_server(serve_corpus):
    server = build_standalone_server(serve_corpus)
    yield server
    server.close(timeout=30)
