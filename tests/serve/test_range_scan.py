"""The pushed-down shard range operator and the batched join-lookup read."""

from __future__ import annotations

import pytest

from repro.exceptions import MaintenanceError

from tests.serve.conftest import build_standalone_server


def in_range(key, low=None, high=None, include_low=True, include_high=True):
    if low is not None and (key < low or (key == low and not include_low)):
        return False
    if high is not None and (key > high or (key == high and not include_high)):
        return False
    return True


class TestRangeScan:
    def test_matches_post_filtered_all_members(self, standalone_server):
        members = set(standalone_server.all_members(1))
        assert members  # the fixture trains a model that splits the corpus
        ids = sorted(members)
        low, high = ids[len(ids) // 4], ids[3 * len(ids) // 4]
        for bounds in (
            dict(low=low),
            dict(high=high),
            dict(low=low, high=high),
            dict(low=low, include_low=False),
            dict(low=low, high=high, include_high=False),
        ):
            got = standalone_server.range_scan(1, **bounds)
            assert sorted(got) == sorted(
                m for m in members if in_range(m, **bounds)
            ), bounds

    def test_negative_class_and_empty_range(self, standalone_server):
        negatives = set(standalone_server.all_members(-1))
        got = standalone_server.range_scan(-1, low=0)
        assert sorted(got) == sorted(m for m in negatives if m >= 0)
        assert standalone_server.range_scan(1, low=10, high=5) == []

    def test_session_range_scan_waits_for_writes(self, serve_corpus):
        server = build_standalone_server(serve_corpus[:120], num_shards=2)
        try:
            session = server.session()
            doc = serve_corpus[121]
            session.insert_entity((doc.entity_id, doc.features))
            session.insert_example(doc.entity_id, doc.label)
            members = session.range_scan(doc.label, low=doc.entity_id, high=doc.entity_id)
            # Read-your-writes: the freshly inserted entity is classified and,
            # if it landed in the class, visible to the range read.
            assert session.last_epoch >= 1
            assert members in ([doc.entity_id], [])
            if server.label_of(doc.entity_id) == doc.label:
                assert members == [doc.entity_id]
        finally:
            server.close(timeout=30)

    def test_range_scan_cheaper_than_contents(self, standalone_server):
        ids = sorted(standalone_server.all_members(1))
        low = ids[len(ids) // 2]
        start = standalone_server.shards.simulated_seconds()
        standalone_server.range_scan(1, low=low)
        pushed = standalone_server.shards.simulated_seconds() - start
        start = standalone_server.shards.simulated_seconds()
        standalone_server.contents()
        materialized = standalone_server.shards.simulated_seconds() - start
        assert pushed * 2 <= materialized


class TestLabelsOf:
    def test_batched_lookup_drops_unknown_ids(self, standalone_server):
        known = [doc_id for doc_id, _ in list(standalone_server.contents().items())[:40]]
        labels = standalone_server.labels_of(known + ["nope", "missing"])
        assert set(labels) == set(known)
        contents = standalone_server.contents()
        assert all(labels[key] == contents[key] for key in known)

    def test_session_labels_of_is_monotonic(self, serve_corpus):
        server = build_standalone_server(serve_corpus[:120], num_shards=2)
        try:
            session = server.session()
            doc = serve_corpus[121]
            session.insert_entity((doc.entity_id, doc.features))
            labels = session.labels_of([doc.entity_id, serve_corpus[0].entity_id])
            assert doc.entity_id in labels  # waited for the pending write
            watermark = session.last_epoch
            assert watermark >= 1
            session.labels_of([serve_corpus[1].entity_id])
            assert session.last_epoch >= watermark
        finally:
            server.close(timeout=30)

    def test_all_unknown_ids_leave_the_session_watermark_alone(self, standalone_server):
        session = standalone_server.session()
        session.label_of(next(iter(standalone_server.contents())))
        watermark = session.last_epoch
        assert session.labels_of(["ghost-1", "ghost-2"]) == {}
        assert session.last_epoch == watermark  # epoch 0 result must not regress it


class TestMaintainerReadRange:
    def test_requires_loaded(self):
        from repro.core.maintainers import HazyEagerMaintainer
        from repro.core.stores import InMemoryEntityStore

        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        with pytest.raises(MaintenanceError):
            maintainer.read_range(1, low=0)

    def test_lazy_range_read_prunes_by_band(self, serve_corpus):
        """The lazy strategy answers range reads from the band-pruned scan."""
        from repro.core.maintainers import HazyLazyMaintainer
        from repro.core.stores import InMemoryEntityStore
        from tests.serve.conftest import warm_trainer_for

        corpus = serve_corpus[:150]
        trainer = warm_trainer_for(corpus)
        maintainer = HazyLazyMaintainer(InMemoryEntityStore(feature_norm_q=1.0))
        maintainer.bulk_load(
            [(doc.entity_id, doc.features) for doc in corpus], trainer.model.copy()
        )
        members = set(maintainer.read_all_members(1))
        ids = sorted(members)
        low = ids[len(ids) // 3]
        got = maintainer.read_range(1, low=low)
        assert sorted(got) == sorted(m for m in members if m >= low)
        assert maintainer.stats.range_reads == 1
