"""Snapshot consistency of reads during concurrent maintenance.

The acceptance property of the serving subsystem: every read executes against
one fully applied epoch — never a half-applied batch — and epochs observed by
any single client never move backwards.  The tests drive reader threads
against a server while a writer streams training examples through the
background pipeline, then verify each epoch-tagged answer against the
declarative oracle (:func:`repro.core.view.view_contents`) evaluated at that
epoch's published model.
"""

from __future__ import annotations

import threading

from repro.core.view import view_contents

from tests.serve.conftest import build_standalone_server

READERS = 4
WRITES = 60


def test_all_members_reads_are_snapshot_consistent(serve_corpus):
    """Concurrent gather reads match the oracle at their tagged epoch exactly."""
    server = build_standalone_server(
        serve_corpus, num_shards=4, epoch_history=100_000, max_write_batch=4
    )
    entities = [(doc.entity_id, doc.features) for doc in serve_corpus]
    observations: list[tuple[int, frozenset]] = []
    lock = threading.Lock()
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader():
        try:
            while not stop.is_set():
                members, epoch = server.all_members_tagged(1)
                with lock:
                    observations.append((epoch, frozenset(members)))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    try:
        for thread in threads:
            thread.start()
        for doc in serve_corpus[:WRITES]:
            server.insert_example(doc.entity_id, doc.label)
        server.flush(timeout=60)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not errors
    assert observations
    epochs_seen = {epoch for epoch, _ in observations}
    assert len(epochs_seen) > 1, "maintenance should have advanced the epoch mid-read"
    for epoch, members in set(observations):
        model = server.model_for_epoch(epoch)
        assert model is not None
        oracle = view_contents(entities, model)
        expected = frozenset(k for k, v in oracle.items() if v == 1)
        assert members == expected, f"read at epoch {epoch} mixed model versions"
    server.close(timeout=30)


def test_single_reads_are_snapshot_consistent(serve_corpus):
    """Batched label_of answers agree with the oracle at their tagged epoch."""
    server = build_standalone_server(
        serve_corpus, num_shards=4, epoch_history=100_000, max_write_batch=4
    )
    features = {doc.entity_id: doc.features for doc in serve_corpus}
    observations: list[tuple[object, int, int]] = []
    lock = threading.Lock()
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader(offset):
        try:
            index = offset
            while not stop.is_set():
                doc = serve_corpus[index % len(serve_corpus)]
                index += 1
                label, epoch = server.label_of_tagged(doc.entity_id)
                with lock:
                    observations.append((doc.entity_id, label, epoch))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader, args=(i * 17,)) for i in range(READERS)]
    try:
        for thread in threads:
            thread.start()
        for doc in serve_corpus[:WRITES]:
            server.insert_example(doc.entity_id, doc.label)
        server.flush(timeout=60)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not errors
    assert observations
    for entity_id, label, epoch in observations:
        model = server.model_for_epoch(epoch)
        assert model is not None
        assert label == model.predict(features[entity_id]), (
            f"label of {entity_id!r} at epoch {epoch} does not match that epoch's model"
        )
    server.close(timeout=30)


def test_sessions_are_monotonic_with_read_your_writes(serve_corpus):
    """Per-client sessions never observe epochs going backwards, and writes
    are visible to the writer's next read."""
    server = build_standalone_server(serve_corpus, num_shards=4, epoch_history=100_000)
    errors: list[BaseException] = []

    def client(offset):
        try:
            session = server.session()
            trail = []
            for step in range(15):
                doc = serve_corpus[(offset + step * 7) % len(serve_corpus)]
                ticket = session.insert_example(doc.entity_id, doc.label)
                session.label_of(doc.entity_id)  # waits for the ticket: RYW
                assert session.last_epoch >= ticket.wait(0)
                trail.append(session.last_epoch)
            assert trail == sorted(trail), "session epochs must be monotonic"
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i * 31,)) for i in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    server.close(timeout=30)
