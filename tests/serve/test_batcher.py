"""Unit tests for the read batcher's coalescing behaviour."""

from __future__ import annotations

import threading

import pytest

from repro.serve.batcher import AdaptiveBatchWindow, ReadBatcher


def test_single_read_resolves():
    calls = []

    def execute(keys):
        calls.append(list(keys))
        return {key: key * 10 for key in keys}

    batcher = ReadBatcher(execute)
    try:
        assert batcher.read(3, timeout=5) == 30
    finally:
        batcher.close()
    assert calls == [[3]]


def test_concurrent_reads_coalesce():
    rounds = []

    def execute(keys):
        rounds.append(len(keys))
        return {key: -key for key in keys}

    batcher = ReadBatcher(execute, max_batch=64, max_wait_s=0.2)
    start = threading.Barrier(16, timeout=5)
    results = {}
    lock = threading.Lock()

    def client(key):
        start.wait()
        value = batcher.read(key, timeout=10)
        with lock:
            results[key] = value

    threads = [threading.Thread(target=client, args=(key,)) for key in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    batcher.close()
    assert results == {key: -key for key in range(16)}
    # 16 simultaneous requests with a generous window must not take 16 rounds.
    assert batcher.rounds < 16
    assert batcher.largest_batch > 1


def test_duplicate_keys_share_one_execution():
    seen = []

    def execute(keys):
        seen.extend(keys)
        return {key: "x" for key in keys}

    batcher = ReadBatcher(execute, max_batch=8, max_wait_s=0.2)
    start = threading.Barrier(4, timeout=5)
    outputs = []

    def client():
        start.wait()
        outputs.append(batcher.read(7, timeout=10))

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    batcher.close()
    assert outputs == ["x"] * 4
    # The executed key list was deduplicated per round.
    assert seen.count(7) == batcher.rounds


def test_errors_propagate_to_all_waiters():
    def execute(keys):
        raise ValueError("boom")

    batcher = ReadBatcher(execute)
    try:
        with pytest.raises(ValueError, match="boom"):
            batcher.read(1, timeout=5)
    finally:
        batcher.close()


def test_closed_batcher_rejects_submissions():
    batcher = ReadBatcher(lambda keys: {key: key for key in keys})
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit(1)


class TestAdaptiveBatchWindow:
    """Pins the adaptation bounds: the derived wait is always in [0, cap]."""

    CAP = 0.002

    def feed(self, window: AdaptiveBatchWindow, interarrival: float, count: int = 50):
        now = 100.0
        for _ in range(count):
            window.observe(now)
            now += interarrival
        return window

    def test_no_arrivals_means_no_wait(self):
        window = AdaptiveBatchWindow(max_batch=64, max_wait_cap_s=self.CAP)
        assert window.window_s() == 0.0
        window.observe(1.0)  # a single arrival still gives no inter-arrival estimate
        assert window.window_s() == 0.0

    def test_sparse_arrivals_collapse_to_zero_wait(self):
        # Inter-arrival above the cap: even a full hold coalesces ~1 request.
        window = self.feed(
            AdaptiveBatchWindow(max_batch=64, max_wait_cap_s=self.CAP), interarrival=0.05
        )
        assert window.window_s() == 0.0

    def test_dense_arrivals_scale_with_rate_and_never_exceed_cap(self):
        dense = self.feed(
            AdaptiveBatchWindow(max_batch=64, max_wait_cap_s=self.CAP), interarrival=1e-5
        )
        denser = self.feed(
            AdaptiveBatchWindow(max_batch=64, max_wait_cap_s=self.CAP), interarrival=1e-6
        )
        assert 0.0 < denser.window_s() <= dense.window_s() <= self.CAP
        # At 10us inter-arrival a 64-batch plausibly fills in 63 * 10us.
        assert dense.window_s() == pytest.approx(63 * 1e-5)

    def test_window_always_within_bounds_across_regimes(self):
        window = AdaptiveBatchWindow(max_batch=32, max_wait_cap_s=self.CAP, alpha=0.5)
        now = 0.0
        for interarrival in (1e-6, 0.5, 1e-5, 0.1, 1e-4, 1e-3, 10.0, 1e-7):
            for _ in range(10):
                window.observe(now)
                now += interarrival
            assert 0.0 <= window.window_s() <= self.CAP

    def test_ewma_tracks_rate_changes(self):
        window = AdaptiveBatchWindow(max_batch=64, max_wait_cap_s=self.CAP, alpha=0.2)
        self.feed(window, interarrival=1e-6)
        fast = window.interarrival_s
        self.feed(window, interarrival=1e-3, count=100)
        assert window.interarrival_s > fast

    def test_max_batch_one_never_waits(self):
        window = self.feed(
            AdaptiveBatchWindow(max_batch=1, max_wait_cap_s=self.CAP), interarrival=1e-6
        )
        assert window.window_s() == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBatchWindow(max_batch=0)
        with pytest.raises(ValueError):
            AdaptiveBatchWindow(max_batch=4, max_wait_cap_s=-1.0)
        with pytest.raises(ValueError):
            AdaptiveBatchWindow(max_batch=4, alpha=0.0)


def test_adaptive_batcher_reports_window_and_serves():
    batcher = ReadBatcher(
        lambda keys: {key: key * 2 for key in keys}, max_batch=8, adaptive=True
    )
    try:
        assert batcher.read(3, timeout=5) == 6
        stats = batcher.stats()
        assert "adaptive_window_seconds" in stats
        assert 0.0 <= stats["adaptive_window_seconds"] <= batcher.window.max_wait_cap_s
    finally:
        batcher.close()
