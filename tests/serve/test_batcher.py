"""Unit tests for the read batcher's coalescing behaviour."""

from __future__ import annotations

import threading

import pytest

from repro.serve.batcher import ReadBatcher


def test_single_read_resolves():
    calls = []

    def execute(keys):
        calls.append(list(keys))
        return {key: key * 10 for key in keys}

    batcher = ReadBatcher(execute)
    try:
        assert batcher.read(3, timeout=5) == 30
    finally:
        batcher.close()
    assert calls == [[3]]


def test_concurrent_reads_coalesce():
    rounds = []

    def execute(keys):
        rounds.append(len(keys))
        return {key: -key for key in keys}

    batcher = ReadBatcher(execute, max_batch=64, max_wait_s=0.2)
    start = threading.Barrier(16, timeout=5)
    results = {}
    lock = threading.Lock()

    def client(key):
        start.wait()
        value = batcher.read(key, timeout=10)
        with lock:
            results[key] = value

    threads = [threading.Thread(target=client, args=(key,)) for key in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    batcher.close()
    assert results == {key: -key for key in range(16)}
    # 16 simultaneous requests with a generous window must not take 16 rounds.
    assert batcher.rounds < 16
    assert batcher.largest_batch > 1


def test_duplicate_keys_share_one_execution():
    seen = []

    def execute(keys):
        seen.extend(keys)
        return {key: "x" for key in keys}

    batcher = ReadBatcher(execute, max_batch=8, max_wait_s=0.2)
    start = threading.Barrier(4, timeout=5)
    outputs = []

    def client():
        start.wait()
        outputs.append(batcher.read(7, timeout=10))

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    batcher.close()
    assert outputs == ["x"] * 4
    # The executed key list was deduplicated per round.
    assert seen.count(7) == batcher.rounds


def test_errors_propagate_to_all_waiters():
    def execute(keys):
        raise ValueError("boom")

    batcher = ReadBatcher(execute)
    try:
        with pytest.raises(ValueError, match="boom"):
            batcher.read(1, timeout=5)
    finally:
        batcher.close()


def test_closed_batcher_rejects_submissions():
    batcher = ReadBatcher(lambda keys: {key: key for key in keys})
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit(1)
