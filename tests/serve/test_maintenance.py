"""Tests for the background maintenance pipeline (standalone server)."""

from __future__ import annotations

import pytest

from repro.core.view import view_contents
from repro.exceptions import MaintenanceError
from repro.serve.requests import WriteKind, WriteOp

from tests.serve.conftest import build_standalone_server


def oracle_for(server, corpus):
    """Expected view contents under the server's current global model."""
    entities = {doc.entity_id: doc.features for doc in corpus}
    # Include entities added at runtime (their features live in the shards).
    current = {
        record.entity_id: record.features
        for shard in server.shards.shards
        for record in shard.call(lambda s=shard: list(s.maintainer.store.scan_all()))
    }
    entities.update(current)
    return view_contents(entities.items(), server.trainer.model.copy())


def test_queued_examples_apply_in_batches(serve_corpus):
    server = build_standalone_server(serve_corpus, max_write_batch=16)
    try:
        tickets = [
            server.insert_example(doc.entity_id, doc.label) for doc in serve_corpus[:40]
        ]
        epoch = server.flush(timeout=30)
        assert all(ticket.wait(5) <= epoch for ticket in tickets)
        # Batching happened: fewer maintenance batches than operations.
        assert server.worker.batches_applied < 40
        assert server.worker.ops_applied == 40
        assert server.contents() == oracle_for(server, serve_corpus)
    finally:
        server.close(timeout=30)


def test_entity_inserts_flow_through_the_queue(serve_corpus):
    server = build_standalone_server(serve_corpus)
    try:
        features = serve_corpus[0].features
        ticket = server.insert_entity(("brand-new", features))
        ticket.wait(10)
        assert server.label_of("brand-new") in (-1, 1)
        assert server.shards.count() == len(serve_corpus) + 1
        assert server.contents() == oracle_for(server, serve_corpus)
    finally:
        server.close(timeout=30)


def test_example_delete_retrains(serve_corpus):
    server = build_standalone_server(serve_corpus)
    try:
        doc = serve_corpus[0]
        server.insert_example(doc.entity_id, doc.label)
        server.flush(timeout=30)
        retained_before = len(server.retained_examples())
        op = WriteOp(
            kind=WriteKind.EXAMPLE_DELETE,
            old_row={"id": doc.entity_id, "label": doc.label},
        )
        server.worker.enqueue(op)
        op.ticket.wait(10)
        assert len(server.retained_examples()) == retained_before - 1
        # Retrained-from-scratch model still yields a consistent view.
        assert server.contents() == oracle_for(server, serve_corpus)
    finally:
        server.close(timeout=30)


def test_flush_is_a_barrier(serve_corpus):
    server = build_standalone_server(serve_corpus)
    try:
        before = server.epoch
        for doc in serve_corpus[:10]:
            server.insert_example(doc.entity_id, doc.label)
        epoch = server.flush(timeout=30)
        assert epoch >= before
        assert server.worker.backlog() == 0
    finally:
        server.close(timeout=30)


def test_bad_write_fails_its_ticket_but_server_survives(serve_corpus):
    server = build_standalone_server(serve_corpus)
    try:
        ticket = server.insert_example("no-such-entity", 1)
        with pytest.raises(MaintenanceError):
            ticket.wait(10)
        # The pipeline keeps serving after the poison op.
        good = server.insert_example(serve_corpus[0].entity_id, serve_corpus[0].label)
        good.wait(10)
        assert server.label_of(serve_corpus[0].entity_id) in (-1, 1)
    finally:
        server.close(timeout=30)


def test_insert_then_delete_same_entity_in_one_batch(serve_corpus):
    """Intra-batch entity churn must replay in arrival order, not grouped."""
    server = build_standalone_server(serve_corpus, max_write_batch=64)
    try:
        features = serve_corpus[0].features
        first = server.insert_entity(("ephemeral", features))
        op = WriteOp(kind=WriteKind.ENTITY_DELETE, old_row=("ephemeral", features))
        second = server.worker.enqueue(op)
        first.wait(10)
        second.wait(10)
        assert server.worker.last_error is None
        assert server.shards.count() == len(serve_corpus)
        assert "ephemeral" not in server.contents()
        # And an insert+update pair of the same entity also survives a batch.
        third = server.insert_entity(("twice", features))
        update = WriteOp(
            kind=WriteKind.ENTITY_UPDATE,
            row=("twice", features),
            old_row=("twice", features),
        )
        fourth = server.worker.enqueue(update)
        third.wait(10)
        fourth.wait(10)
        assert server.worker.last_error is None
        assert server.shards.count() == len(serve_corpus) + 1
    finally:
        server.close(timeout=30)


def test_read_of_unknown_id_does_not_poison_the_batch(serve_corpus):
    """Per-key error isolation: one bad key fails only its own waiters."""
    import threading

    server = build_standalone_server(serve_corpus)
    try:
        results = {}
        errors = {}
        barrier = threading.Barrier(4, timeout=5)

        def read(key):
            barrier.wait()
            try:
                results[key] = server.label_of(key)
            except Exception as error:
                errors[key] = error

        good = [doc.entity_id for doc in serve_corpus[:3]]
        threads = [threading.Thread(target=read, args=(key,)) for key in good]
        threads.append(threading.Thread(target=read, args=("missing",)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(results) == sorted(good)
        assert set(errors) == {"missing"}
    finally:
        server.close(timeout=30)


def test_writes_rejected_after_close(serve_corpus):
    server = build_standalone_server(serve_corpus)
    server.close(timeout=30)
    with pytest.raises(MaintenanceError):
        server.insert_example(serve_corpus[0].entity_id, 1)
