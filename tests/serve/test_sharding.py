"""Unit tests for hash partitioning and scatter/gather reads."""

from __future__ import annotations

import pytest

from repro.core.maintainers import HazyEagerMaintainer, HazyLazyMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.core.view import view_contents
from repro.learn.model import sign
from repro.serve.sharding import ShardSet, shard_index

from tests.serve.conftest import warm_trainer_for


def build_shard_set(corpus, num_shards=4, maintainer_cls=HazyEagerMaintainer):
    trainer = warm_trainer_for(corpus)
    shard_set = ShardSet.build(
        [(doc.entity_id, doc.features) for doc in corpus],
        trainer.model.copy(),
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=1.0),
        maintainer_factory=lambda store: maintainer_cls(store, alpha=1.0),
        num_shards=num_shards,
    )
    return shard_set, trainer


def test_partitioning_covers_every_entity(serve_corpus):
    shard_set, _ = build_shard_set(serve_corpus)
    try:
        assert shard_set.count() == len(serve_corpus)
        per_shard = [shard.maintainer.store.count() for shard in shard_set.shards]
        assert sum(per_shard) == len(serve_corpus)
        assert all(count > 0 for count in per_shard)  # hash spread, not skewed to one
        for doc in serve_corpus:
            owner = shard_set.shard_for(doc.entity_id)
            assert owner.index == shard_index(doc.entity_id, len(shard_set))
            assert owner.maintainer.store.get(doc.entity_id).entity_id == doc.entity_id
    finally:
        shard_set.shutdown()


@pytest.mark.parametrize("maintainer_cls", [HazyEagerMaintainer, HazyLazyMaintainer])
def test_scatter_gather_matches_oracle(serve_corpus, maintainer_cls):
    shard_set, trainer = build_shard_set(serve_corpus, maintainer_cls=maintainer_cls)
    try:
        oracle = view_contents(
            [(doc.entity_id, doc.features) for doc in serve_corpus], trainer.model
        )
        assert shard_set.contents() == oracle
        expected_positive = sorted(k for k, v in oracle.items() if v == 1)
        assert sorted(shard_set.all_members(1)) == expected_positive
        expected_negative = sorted(k for k, v in oracle.items() if v == -1)
        assert sorted(shard_set.all_members(-1)) == expected_negative
        batch = [doc.entity_id for doc in serve_corpus[:50]]
        assert shard_set.read_batch(batch) == {key: oracle[key] for key in batch}
        assert shard_set.read_single(batch[0]) == oracle[batch[0]]
    finally:
        shard_set.shutdown()


def test_top_k_is_globally_ranked(serve_corpus):
    shard_set, trainer = build_shard_set(serve_corpus)
    try:
        margins = {
            doc.entity_id: trainer.model.margin(doc.features) for doc in serve_corpus
        }
        top = shard_set.top_k(10, label=1)
        assert len(top) == 10
        expected_ids = [
            entity_id
            for entity_id, _ in sorted(margins.items(), key=lambda kv: -kv[1])[:10]
        ]
        got_margins = [margin for _, margin in top]
        assert got_margins == sorted(got_margins, reverse=True)
        assert sorted(entity_id for entity_id, _ in top) == sorted(expected_ids)
        bottom = shard_set.top_k(5, label=-1)
        bottom_margins = [margin for _, margin in bottom]
        assert bottom_margins == sorted(bottom_margins)  # most negative first
    finally:
        shard_set.shutdown()


def test_model_batch_and_entity_churn(serve_corpus):
    shard_set, trainer = build_shard_set(serve_corpus)
    try:
        models = []
        for doc in serve_corpus[:20]:
            from repro.learn.sgd import TrainingExample

            models.append(
                trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))
            )
        shard_set.apply_model_batch(models)
        final = trainer.model
        oracle = view_contents(
            [(doc.entity_id, doc.features) for doc in serve_corpus], final
        )
        assert shard_set.contents() == oracle

        extra = serve_corpus[0].features
        label = shard_set.add_entity("fresh", extra)
        assert label == sign(final.margin(extra))
        assert shard_set.count() == len(serve_corpus) + 1
        shard_set.remove_entity("fresh")
        assert shard_set.count() == len(serve_corpus)
    finally:
        shard_set.shutdown()
