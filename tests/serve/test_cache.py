"""Unit tests for the water-band-aware result cache."""

from __future__ import annotations

from repro.core.bounds import WaterBand
from repro.core.stores.base import EntityRecord
from repro.linalg import SparseVector
from repro.serve.cache import WaterBandResultCache


def make_record(entity_id, eps):
    return EntityRecord(entity_id, SparseVector({0: 1.0}), eps, 1 if eps >= 0 else -1)


class FakeShardState:
    def __init__(self):
        self.band = WaterBand(-0.2, 0.2)
        self.reorganizations = 0


def make_cache(state, capacity=100):
    return WaterBandResultCache(
        band_supplier=lambda: state.band,
        reorg_supplier=lambda: state.reorganizations,
        capacity=capacity,
    )


def test_out_of_band_entities_hit():
    state = FakeShardState()
    cache = make_cache(state)
    cache.observe(make_record("p", 0.9))
    cache.observe(make_record("n", -0.7))
    assert cache.lookup("p") == 1
    assert cache.lookup("n") == -1
    assert cache.hits == 2


def test_in_band_entities_miss():
    state = FakeShardState()
    cache = make_cache(state)
    cache.observe(make_record("x", 0.05))  # inside [-0.2, 0.2]: uncertain
    assert cache.lookup("x") is None
    assert cache.misses == 1


def test_band_widening_silently_invalidates():
    state = FakeShardState()
    cache = make_cache(state)
    cache.observe(make_record("p", 0.5))
    assert cache.lookup("p") == 1
    state.band = WaterBand(-1.0, 1.0)  # model moved: 0.5 is now uncertain
    assert cache.lookup("p") is None


def test_reorganization_clears_everything():
    state = FakeShardState()
    cache = make_cache(state)
    cache.observe(make_record("p", 0.9))
    assert cache.lookup("p") == 1
    state.reorganizations += 1  # all stored eps recomputed: cache is garbage
    assert cache.lookup("p") is None
    assert cache.invalidations == 1
    assert len(cache) == 0


def test_no_band_means_no_hits():
    cache = WaterBandResultCache(
        band_supplier=lambda: None, reorg_supplier=lambda: 0, capacity=10
    )
    cache.observe(make_record("p", 0.9))
    assert cache.lookup("p") is None


def test_fifo_eviction_beyond_capacity():
    state = FakeShardState()
    cache = make_cache(state, capacity=2)
    cache.observe(make_record("a", 0.9))
    cache.observe(make_record("b", 0.9))
    cache.observe(make_record("c", 0.9))  # evicts "a"
    assert cache.lookup("a") is None
    assert cache.lookup("b") == 1
    assert cache.lookup("c") == 1


def test_evict_single_entity():
    state = FakeShardState()
    cache = make_cache(state)
    cache.observe(make_record("a", 0.9))
    cache.evict("a")
    assert cache.lookup("a") is None
