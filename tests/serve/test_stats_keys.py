"""The serving stats dicts expose canonical snake_case keys only.

PR 6 unified every counter name onto ``_total`` / ``_seconds`` suffixes and
kept the pre-unification spellings as aliases for one release; this pins
their removal — dashboards reading the bare names must fail loudly, not
silently double-count.
"""

from __future__ import annotations

from repro.core.bounds import WaterBand
from repro.serve.batcher import ReadBatcher
from repro.serve.cache import WaterBandResultCache
from repro.serve.maintenance import MaintenanceWorker

LEGACY_KEYS = {
    "rounds",
    "requests",
    "adaptive_window_s",
    "batches_applied",
    "ops_applied",
    "hits",
    "misses",
    "invalidations",
}


def test_batcher_stats_have_no_legacy_aliases():
    batcher = ReadBatcher(lambda keys: {key: key for key in keys}, adaptive=True)
    try:
        batcher.read(1, timeout=5)
        stats = batcher.stats()
    finally:
        batcher.close()
    assert not LEGACY_KEYS & stats.keys()
    assert {"rounds_total", "requests_total", "adaptive_window_seconds"} <= stats.keys()


def test_cache_stats_have_no_legacy_aliases():
    band = WaterBand(-0.1, 0.1)
    cache = WaterBandResultCache(band_supplier=lambda: band, reorg_supplier=lambda: 0)
    stats = cache.stats()
    assert not LEGACY_KEYS & stats.keys()
    assert {"hits_total", "misses_total", "invalidations_total"} <= stats.keys()


def test_maintenance_stats_have_no_legacy_aliases():
    worker = MaintenanceWorker(host=None)
    stats = worker.stats()
    assert not LEGACY_KEYS & stats.keys()
    assert {"batches_applied_total", "ops_applied_total"} <= stats.keys()
