"""Unit tests for the readers/writer lock and the epoch clock."""

from __future__ import annotations

import threading
import time

from repro.serve.sync import EpochClock, ReadWriteLock


class TestReadWriteLock:
    def test_readers_are_concurrent(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read_locked():
                inside.append(1)
                barrier.wait()  # deadlocks unless all 4 readers are inside together

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert len(inside) == 4

    def test_writer_is_exclusive(self):
        lock = ReadWriteLock()
        log = []

        def writer():
            with lock.write_locked():
                log.append("w-in")
                time.sleep(0.05)
                log.append("w-out")

        def reader():
            with lock.read_locked():
                log.append("r")

        lock.acquire_read()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.02)  # writer is now waiting on the active reader
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        time.sleep(0.02)
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        # Writer preference: the queued reader must not slip inside the writer.
        writer_in = log.index("w-in")
        writer_out = log.index("w-out")
        reader_at = log.index("r")
        assert not (writer_in < reader_at < writer_out)
        assert reader_at > writer_in  # reader blocked until after the writer started

    def test_write_lock_reentrancy_not_required(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            pass
        with lock.read_locked():
            pass  # lock is reusable after a writer cycle


class TestEpochClock:
    def test_advance_and_wait(self):
        clock = EpochClock()
        assert clock.epoch == 0
        assert clock.advance() == 1
        assert clock.wait_for(1, timeout=0.1)
        assert not clock.wait_for(5, timeout=0.05)

    def test_wait_wakes_on_advance(self):
        clock = EpochClock()
        seen = []

        def waiter():
            seen.append(clock.wait_for(3, timeout=5))

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(3):
            clock.advance()
        thread.join(timeout=5)
        assert seen == [True]
