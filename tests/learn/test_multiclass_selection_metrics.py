"""Unit tests for multiclass reduction, model selection and metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.metrics import accuracy, confusion_counts, f1_score, precision_recall
from repro.learn.model_selection import (
    DEFAULT_CANDIDATES,
    cross_validation_error,
    leave_one_out_error,
    select_method,
)
from repro.learn.multiclass import LabeledExample, OneVersusAllClassifier
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector


def three_class_examples() -> list[LabeledExample]:
    """Each class concentrates on its own feature index."""
    examples = []
    for i in range(12):
        cls = i % 3
        features = SparseVector({cls: 1.0, 3: 0.1})
        examples.append(LabeledExample(entity_id=i, features=features, label=f"class{cls}"))
    return examples


class TestOneVersusAll:
    def test_requires_two_labels(self):
        with pytest.raises(ConfigurationError):
            OneVersusAllClassifier(["only"])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ConfigurationError):
            OneVersusAllClassifier(["a", "a"])

    def test_unknown_label_rejected(self):
        clf = OneVersusAllClassifier(["a", "b"])
        with pytest.raises(ConfigurationError):
            clf.absorb(LabeledExample(0, SparseVector({0: 1.0}), "c"))

    def test_predict_before_training_raises(self):
        clf = OneVersusAllClassifier(["a", "b"])
        with pytest.raises(NotFittedError):
            clf.predict(SparseVector({0: 1.0}))

    def test_learns_three_classes(self):
        clf = OneVersusAllClassifier(
            ["class0", "class1", "class2"],
            trainer_factory=lambda: SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0),
        )
        examples = three_class_examples()
        for _ in range(10):
            clf.absorb_many(examples)
        assert all(clf.predict(ex.features) == ex.label for ex in examples)

    def test_scores_has_every_label(self):
        clf = OneVersusAllClassifier(["a", "b", "c"])
        clf.absorb(LabeledExample(0, SparseVector({0: 1.0}), "a"))
        assert set(clf.scores(SparseVector({0: 1.0}))) == {"a", "b", "c"}

    def test_absorbed_counter(self):
        clf = OneVersusAllClassifier(["a", "b"])
        clf.absorb(LabeledExample(0, SparseVector({0: 1.0}), "a"))
        assert clf.absorbed == 1

    def test_models_snapshot(self):
        clf = OneVersusAllClassifier(["a", "b"])
        clf.absorb(LabeledExample(0, SparseVector({0: 1.0}), "a"))
        models = clf.models()
        assert set(models) == {"a", "b"}
        assert models["a"].version == 1


def _simple_separable() -> list[TrainingExample]:
    return [
        TrainingExample(i, SparseVector({0: 1.0 + 0.1 * i}), 1) for i in range(5)
    ] + [
        TrainingExample(10 + i, SparseVector({0: -1.0 - 0.1 * i}), -1) for i in range(5)
    ]


class TestModelSelection:
    def test_leave_one_out_zero_error_on_easy_data(self):
        def factory():
            return SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0)

        error = leave_one_out_error(factory, _simple_separable(), epochs=5)
        assert error == pytest.approx(0.0)

    def test_leave_one_out_requires_two_examples(self):
        with pytest.raises(ConfigurationError):
            leave_one_out_error(SGDTrainer, _simple_separable()[:1])

    def test_cross_validation_needs_enough_examples(self):
        with pytest.raises(ConfigurationError):
            cross_validation_error(SGDTrainer, _simple_separable()[:3], folds=5)

    def test_cross_validation_low_error_on_easy_data(self):
        def factory():
            return SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0)

        error = cross_validation_error(factory, _simple_separable(), folds=5, epochs=5)
        assert error <= 0.2

    def test_select_method_returns_known_candidate(self):
        name, error = select_method(_simple_separable(), epochs=3)
        assert name in DEFAULT_CANDIDATES
        assert 0.0 <= error <= 1.0

    def test_select_method_rejects_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            select_method(_simple_separable(), candidates={})

    def test_select_method_switches_to_cv_for_large_sets(self):
        examples = _simple_separable() * 10
        name, error = select_method(examples, max_exact=5, epochs=1)
        assert name in DEFAULT_CANDIDATES


class TestMetrics:
    def test_confusion_counts(self):
        counts = confusion_counts([1, 1, -1, -1], [1, -1, -1, 1])
        assert counts.true_positive == 1
        assert counts.false_positive == 1
        assert counts.true_negative == 1
        assert counts.false_negative == 1
        assert counts.total == 4

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_counts([1], [1, -1])

    def test_accuracy(self):
        assert accuracy([1, -1, 1], [1, -1, -1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_one(self):
        assert accuracy([], []) == 1.0

    def test_precision_recall(self):
        precision, recall = precision_recall([1, 1, -1], [1, -1, 1])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_precision_degenerate_cases(self):
        precision, recall = precision_recall([-1, -1], [-1, -1])
        assert precision == 1.0
        assert recall == 1.0

    def test_f1_score(self):
        assert f1_score([1, 1, -1], [1, -1, 1]) == pytest.approx(0.5)

    def test_f1_zero_when_no_positives_predicted_but_present(self):
        assert f1_score([-1, -1], [1, 1]) == pytest.approx(0.0)
