"""Unit tests for the SGD trainer."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector


def xor_free_examples() -> list[TrainingExample]:
    """A tiny linearly separable problem: label = sign of feature 0."""
    return [
        TrainingExample(0, SparseVector({0: 1.0}), 1),
        TrainingExample(1, SparseVector({0: 2.0}), 1),
        TrainingExample(2, SparseVector({0: -1.0}), -1),
        TrainingExample(3, SparseVector({0: -2.0}), -1),
        TrainingExample(4, SparseVector({0: 1.5, 1: 0.5}), 1),
        TrainingExample(5, SparseVector({0: -1.5, 1: 0.5}), -1),
    ]


class TestTrainingExample:
    def test_invalid_label_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingExample(0, SparseVector({0: 1.0}), 2)

    def test_valid_labels(self):
        assert TrainingExample(0, SparseVector(), 1).label == 1
        assert TrainingExample(0, SparseVector(), -1).label == -1


class TestConstruction:
    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            SGDTrainer(learning_rate=0.0)

    def test_invalid_decay(self):
        with pytest.raises(ConfigurationError):
            SGDTrainer(decay=-1.0)

    def test_initial_model_is_zero(self):
        assert SGDTrainer().model.is_zero()


class TestIncrementalTraining:
    def test_absorb_returns_snapshot(self):
        trainer = SGDTrainer()
        snapshot = trainer.absorb(TrainingExample(0, SparseVector({0: 1.0}), 1))
        assert snapshot is not trainer.model
        assert snapshot.version == 1

    def test_version_counts_examples(self):
        trainer = SGDTrainer()
        trainer.absorb_many(xor_free_examples())
        assert trainer.model.version == len(xor_free_examples())
        assert trainer.steps == len(xor_free_examples())

    def test_positive_example_moves_margin_up(self):
        trainer = SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0, regularization=0.0)
        example = TrainingExample(0, SparseVector({0: 1.0}), 1)
        before = trainer.model.margin(example.features)
        trainer.absorb(example)
        after = trainer.model.margin(example.features)
        assert after > before

    def test_negative_example_moves_margin_down(self):
        trainer = SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0, regularization=0.0)
        example = TrainingExample(0, SparseVector({0: 1.0}), -1)
        before = trainer.model.margin(example.features)
        trainer.absorb(example)
        assert trainer.model.margin(example.features) < before

    def test_learning_rate_decays(self):
        trainer = SGDTrainer(learning_rate=1.0, decay=1.0)
        assert trainer.current_step_size() == pytest.approx(1.0)
        trainer.absorb(TrainingExample(0, SparseVector({0: 1.0}), 1))
        assert trainer.current_step_size() == pytest.approx(0.5)

    def test_zero_gradient_leaves_weights_unchanged_except_regularization(self):
        trainer = SGDTrainer(loss="svm", learning_rate=0.1, decay=0.0, regularization=0.0)
        # Make the example easily satisfied, then absorb it again.
        example = TrainingExample(0, SparseVector({0: 1.0}), 1)
        for _ in range(30):
            trainer.absorb(example)
        weights_before = trainer.model.weights.to_dict()
        trainer.absorb(example)
        assert trainer.model.weights.to_dict() == pytest.approx(weights_before)

    def test_reset_clears_model(self):
        trainer = SGDTrainer()
        trainer.absorb(TrainingExample(0, SparseVector({0: 1.0}), 1))
        trainer.reset()
        assert trainer.model.is_zero()
        assert trainer.steps == 0


class TestBatchTraining:
    def test_fit_separates_separable_data(self):
        trainer = SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0)
        examples = xor_free_examples()
        trainer.fit(examples, epochs=20)
        assert all(trainer.predict(ex.features) == ex.label for ex in examples)

    def test_fit_requires_positive_epochs(self):
        with pytest.raises(ConfigurationError):
            SGDTrainer().fit(xor_free_examples(), epochs=0)

    def test_average_loss_decreases_with_training(self):
        examples = xor_free_examples()
        trainer = SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0)
        initial = trainer.average_loss(examples)
        trainer.fit(examples, epochs=20)
        assert trainer.average_loss(examples) < initial

    def test_average_loss_empty_is_zero(self):
        assert SGDTrainer().average_loss([]) == 0.0

    def test_logistic_loss_also_learns(self):
        trainer = SGDTrainer(loss="logistic", learning_rate=1.0, decay=0.0)
        examples = xor_free_examples()
        trainer.fit(examples, epochs=30)
        assert all(trainer.predict(ex.features) == ex.label for ex in examples)

    def test_learns_synthetic_corpus_reasonably(self, tiny_corpus, example_factory):
        """On the synthetic corpus, training beats the majority-class baseline."""
        trainer = SGDTrainer(loss="svm", seed=1)
        trainer.fit(example_factory(tiny_corpus, 300, seed=2), epochs=3)
        correct = sum(
            1 for doc in tiny_corpus if trainer.predict(doc.features) == doc.label
        )
        majority = max(
            sum(1 for d in tiny_corpus if d.label == 1),
            sum(1 for d in tiny_corpus if d.label == -1),
        )
        assert correct > majority
