"""Unit tests for the passive-aggressive, perceptron and batch learners."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.batch import BatchSubgradientSVM
from repro.learn.passive_aggressive import PassiveAggressiveTrainer
from repro.learn.perceptron import PerceptronTrainer
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector


def separable_examples() -> list[TrainingExample]:
    """label = sign of feature 0 (with a distractor feature)."""
    return [
        TrainingExample(0, SparseVector({0: 1.0, 1: 0.3}), 1),
        TrainingExample(1, SparseVector({0: 2.0}), 1),
        TrainingExample(2, SparseVector({0: 0.7, 1: -0.2}), 1),
        TrainingExample(3, SparseVector({0: -1.0, 1: 0.3}), -1),
        TrainingExample(4, SparseVector({0: -2.0}), -1),
        TrainingExample(5, SparseVector({0: -0.7, 1: -0.2}), -1),
    ]


class TestPassiveAggressive:
    def test_invalid_aggressiveness(self):
        with pytest.raises(ConfigurationError):
            PassiveAggressiveTrainer(aggressiveness=0.0)

    def test_learns_separable_data(self):
        trainer = PassiveAggressiveTrainer()
        examples = separable_examples()
        for _ in range(5):
            trainer.absorb_many(examples)
        assert all(trainer.predict(ex.features) == ex.label for ex in examples)

    def test_no_update_when_margin_satisfied(self):
        trainer = PassiveAggressiveTrainer()
        example = TrainingExample(0, SparseVector({0: 1.0}), 1)
        for _ in range(10):
            trainer.absorb(example)
        weights_before = trainer.model.weights.to_dict()
        trainer.absorb(example)
        assert trainer.model.weights.to_dict() == pytest.approx(weights_before)

    def test_step_capped_by_aggressiveness(self):
        gentle = PassiveAggressiveTrainer(aggressiveness=0.01)
        example = TrainingExample(0, SparseVector({0: 1.0}), 1)
        gentle.absorb(example)
        # tau <= 0.01, feature value 1 -> weight change <= 0.01
        assert gentle.model.weights[0] <= 0.01 + 1e-12

    def test_versions_and_reset(self):
        trainer = PassiveAggressiveTrainer()
        trainer.absorb_many(separable_examples())
        assert trainer.steps == 6
        trainer.reset()
        assert trainer.steps == 0
        assert trainer.model.is_zero()


class TestPerceptron:
    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            PerceptronTrainer(learning_rate=0.0)

    def test_learns_separable_data(self):
        trainer = PerceptronTrainer()
        examples = separable_examples()
        for _ in range(10):
            trainer.absorb_many(examples)
        assert all(trainer.predict(ex.features) == ex.label for ex in examples)

    def test_mistake_driven_updates_only(self):
        trainer = PerceptronTrainer()
        example = TrainingExample(0, SparseVector({0: 1.0}), 1)
        trainer.absorb(example)  # first example: prediction sign(0) = +1 == label, no update
        assert trainer.model.weights.nnz() == 0

    def test_mistake_triggers_update(self):
        trainer = PerceptronTrainer()
        example = TrainingExample(0, SparseVector({0: 1.0}), -1)
        trainer.absorb(example)  # sign(0) = +1 != -1 -> update
        assert trainer.model.weights[0] == pytest.approx(-1.0)

    def test_averaged_snapshot_differs_from_raw(self):
        trainer = PerceptronTrainer(averaged=True)
        examples = separable_examples()
        trainer.absorb_many(examples)
        averaged = trainer.snapshot()
        assert averaged.weights.to_dict() != trainer.model.weights.to_dict() or (
            averaged.bias != trainer.model.bias
        )

    def test_averaged_also_learns(self):
        trainer = PerceptronTrainer(averaged=True)
        examples = separable_examples()
        for _ in range(10):
            trainer.absorb_many(examples)
        assert all(trainer.predict(ex.features) == ex.label for ex in examples)

    def test_reset(self):
        trainer = PerceptronTrainer(averaged=True)
        trainer.absorb_many(separable_examples())
        trainer.reset()
        assert trainer.steps == 0
        assert trainer.snapshot().is_zero()


class TestBatchSubgradientSVM:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BatchSubgradientSVM(regularization=0.0)
        with pytest.raises(ConfigurationError):
            BatchSubgradientSVM(iterations=0)

    def test_empty_training_set_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchSubgradientSVM().fit([])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BatchSubgradientSVM().predict(SparseVector({0: 1.0}))

    def test_fits_separable_data(self):
        solver = BatchSubgradientSVM(regularization=1e-2, iterations=100)
        examples = separable_examples()
        solver.fit(examples)
        assert all(solver.predict(ex.features) == ex.label for ex in examples)

    def test_objective_decreases(self):
        solver = BatchSubgradientSVM(regularization=1e-2, iterations=80)
        solver.fit(separable_examples())
        trace = solver.objective_trace
        assert trace[-1] <= trace[0]

    def test_visits_every_example_every_iteration(self):
        solver = BatchSubgradientSVM(regularization=1e-2, iterations=10, tolerance=0.0)
        examples = separable_examples()
        solver.fit(examples)
        assert solver.examples_visited == 10 * len(examples)

    def test_does_far_more_work_than_single_pass_sgd(self):
        """The Figure 10 comparison point: batch solving visits many more examples."""
        solver = BatchSubgradientSVM(regularization=1e-2, iterations=50, tolerance=0.0)
        examples = separable_examples()
        solver.fit(examples)
        assert solver.examples_visited >= 10 * len(examples)
