"""Unit tests for kernels, kernel classifiers and random Fourier features."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.kernel_model import KernelClassifier, KernelPerceptronTrainer, SupportVector
from repro.learn.kernels import (
    GaussianKernel,
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    get_kernel,
)
from repro.learn.random_features import RandomFourierFeatures
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector


class TestKernels:
    def test_linear_kernel_is_dot_product(self):
        kernel = LinearKernel()
        assert kernel(SparseVector({0: 1.0, 1: 2.0}), SparseVector({1: 3.0})) == pytest.approx(6.0)

    def test_polynomial_kernel(self):
        kernel = PolynomialKernel(degree=2, gamma=1.0, coef0=1.0)
        x = SparseVector({0: 1.0})
        y = SparseVector({0: 2.0})
        assert kernel(x, y) == pytest.approx((2.0 + 1.0) ** 2)

    def test_polynomial_requires_positive_degree(self):
        with pytest.raises(ConfigurationError):
            PolynomialKernel(degree=0)

    def test_gaussian_kernel_identity(self):
        kernel = GaussianKernel(gamma=0.5)
        x = SparseVector({0: 1.0, 3: -2.0})
        assert kernel(x, x) == pytest.approx(1.0)

    def test_gaussian_kernel_decays_with_distance(self):
        kernel = GaussianKernel(gamma=1.0)
        x = SparseVector({0: 0.0})
        near = SparseVector({0: 0.1})
        far = SparseVector({0: 2.0})
        assert kernel(x, near) > kernel(x, far)

    def test_gaussian_value_matches_closed_form(self):
        kernel = GaussianKernel(gamma=2.0)
        x = SparseVector({0: 1.0})
        y = SparseVector({1: 1.0})
        assert kernel(x, y) == pytest.approx(math.exp(-2.0 * 2.0))

    def test_laplacian_uses_l1_distance(self):
        kernel = LaplacianKernel(gamma=1.0)
        x = SparseVector({0: 1.0})
        y = SparseVector({1: 1.0})
        assert kernel(x, y) == pytest.approx(math.exp(-2.0))

    def test_shift_invariance_flags(self):
        assert GaussianKernel().shift_invariant
        assert LaplacianKernel().shift_invariant
        assert not LinearKernel().shift_invariant
        assert not PolynomialKernel().shift_invariant

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            GaussianKernel(gamma=0.0)
        with pytest.raises(ConfigurationError):
            LaplacianKernel(gamma=-1.0)

    def test_registry(self):
        assert isinstance(get_kernel("rbf"), GaussianKernel)
        assert isinstance(get_kernel("poly", degree=3), PolynomialKernel)
        with pytest.raises(ConfigurationError):
            get_kernel("bogus")


class TestKernelClassifier:
    def test_score_is_weighted_kernel_sum(self):
        classifier = KernelClassifier(
            kernel=LinearKernel(),
            support_vectors=[
                SupportVector(SparseVector({0: 1.0}), 2.0),
                SupportVector(SparseVector({0: 1.0}), -0.5),
            ],
            bias=0.25,
        )
        assert classifier.score(SparseVector({0: 2.0})) == pytest.approx(2.0 * 2 - 0.5 * 2 + 0.25)

    def test_coefficient_l1_delta_pads_shorter_model(self):
        a = KernelClassifier(support_vectors=[SupportVector(SparseVector({0: 1.0}), 1.0)])
        b = KernelClassifier(
            support_vectors=[
                SupportVector(SparseVector({0: 1.0}), 1.0),
                SupportVector(SparseVector({1: 1.0}), -2.0),
            ]
        )
        assert a.coefficient_l1_delta(b) == pytest.approx(2.0)

    def test_kernel_perceptron_learns_nonlinear_boundary(self):
        """A ring/center problem that a linear model cannot separate."""
        center = [SparseVector({0: 0.05 * i, 1: 0.05 * j}) for i in (-1, 0, 1) for j in (-1, 0, 1)]
        ring = [
            SparseVector({0: 1.5 * math.cos(t), 1: 1.5 * math.sin(t)})
            for t in [k * math.pi / 4 for k in range(8)]
        ]
        examples = [TrainingExample(i, v, 1) for i, v in enumerate(center)]
        examples += [TrainingExample(100 + i, v, -1) for i, v in enumerate(ring)]
        trainer = KernelPerceptronTrainer(kernel=GaussianKernel(gamma=1.5))
        trainer.fit(examples, epochs=10)
        correct = sum(1 for ex in examples if trainer.predict(ex.features) == ex.label)
        assert correct >= len(examples) - 1

    def test_kernel_perceptron_predict_before_training(self):
        with pytest.raises(NotFittedError):
            KernelPerceptronTrainer().predict(SparseVector({0: 1.0}))

    def test_mistakes_add_support_vectors(self):
        trainer = KernelPerceptronTrainer()
        trainer.absorb(TrainingExample(0, SparseVector({0: 1.0}), -1))
        assert len(trainer.model.support_vectors) == 1


class TestRandomFourierFeatures:
    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            RandomFourierFeatures(0, 10)

    def test_requires_shift_invariant_kernel(self):
        with pytest.raises(ConfigurationError):
            RandomFourierFeatures(4, 10, kernel=LinearKernel())

    def test_output_dimension(self):
        rff = RandomFourierFeatures(5, 64, kernel=GaussianKernel(gamma=1.0), seed=1)
        transformed = rff.transform(SparseVector({0: 1.0, 4: -1.0}))
        assert transformed.max_index() < 64

    def test_kernel_approximation_quality(self):
        """z(x)^T z(y) approximates K(x, y) (Rahimi & Recht)."""
        kernel = GaussianKernel(gamma=0.5)
        rff = RandomFourierFeatures(4, 2048, kernel=kernel, seed=3)
        x = SparseVector({0: 0.4, 1: -0.2})
        y = SparseVector({0: 0.1, 2: 0.3})
        exact = kernel(x, y)
        approx = rff.approximate_kernel(x, y)
        assert approx == pytest.approx(exact, abs=0.1)

    def test_deterministic_given_seed(self):
        a = RandomFourierFeatures(3, 16, seed=9).transform(SparseVector({0: 1.0}))
        b = RandomFourierFeatures(3, 16, seed=9).transform(SparseVector({0: 1.0}))
        assert a.to_dict() == pytest.approx(b.to_dict())

    def test_laplacian_kernel_supported(self):
        rff = RandomFourierFeatures(3, 32, kernel=LaplacianKernel(gamma=1.0), seed=2)
        assert rff.transform(SparseVector({1: 1.0})).nnz() > 0
