"""Unit tests for loss functions and regularization penalties (Figure 9)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.learn.loss import HingeLoss, LogisticLoss, SquaredLoss, get_loss
from repro.learn.regularizers import (
    ElasticNetPenalty,
    L1Penalty,
    L2Penalty,
    get_regularizer,
)
from repro.linalg import SparseVector


class TestHingeLoss:
    loss = HingeLoss()

    def test_zero_beyond_margin(self):
        assert self.loss.value(2.0, 1.0) == 0.0
        assert self.loss.value(-2.0, -1.0) == 0.0

    def test_linear_inside_margin(self):
        assert self.loss.value(0.0, 1.0) == pytest.approx(1.0)
        assert self.loss.value(-1.0, 1.0) == pytest.approx(2.0)

    def test_derivative_active(self):
        assert self.loss.derivative(0.0, 1.0) == -1.0
        assert self.loss.derivative(0.0, -1.0) == 1.0

    def test_derivative_inactive(self):
        assert self.loss.derivative(2.0, 1.0) == 0.0

    def test_boundary_is_inactive(self):
        # z * y == 1 is exactly on the margin: no sub-gradient step is taken.
        assert self.loss.derivative(1.0, 1.0) == 0.0


class TestSquaredLoss:
    loss = SquaredLoss()

    def test_value(self):
        assert self.loss.value(0.5, 1.0) == pytest.approx(0.25)

    def test_derivative(self):
        assert self.loss.derivative(0.5, 1.0) == pytest.approx(-1.0)

    def test_minimum_at_label(self):
        assert self.loss.value(1.0, 1.0) == 0.0
        assert self.loss.derivative(1.0, 1.0) == 0.0


class TestLogisticLoss:
    loss = LogisticLoss()

    def test_value_at_zero(self):
        assert self.loss.value(0.0, 1.0) == pytest.approx(math.log(2.0))

    def test_value_decreases_with_margin(self):
        assert self.loss.value(3.0, 1.0) < self.loss.value(0.0, 1.0)

    def test_derivative_sign(self):
        assert self.loss.derivative(0.0, 1.0) < 0
        assert self.loss.derivative(0.0, -1.0) > 0

    def test_numerically_stable_for_large_margins(self):
        assert self.loss.value(1000.0, -1.0) == pytest.approx(1000.0)
        assert self.loss.value(1000.0, 1.0) == pytest.approx(0.0, abs=1e-12)
        assert self.loss.derivative(1000.0, 1.0) == pytest.approx(0.0, abs=1e-12)
        assert self.loss.derivative(-1000.0, 1.0) == pytest.approx(-1.0)


class TestLossRegistry:
    def test_lookup_by_alias(self):
        assert isinstance(get_loss("svm"), HingeLoss)
        assert isinstance(get_loss("ridge"), SquaredLoss)
        assert isinstance(get_loss("logistic_regression"), LogisticLoss)

    def test_instance_passthrough(self):
        loss = HingeLoss()
        assert get_loss(loss) is loss

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_loss("bogus")


class TestL2Penalty:
    def test_value(self):
        penalty = L2Penalty(strength=0.5)
        assert penalty.value(SparseVector({0: 2.0})) == pytest.approx(1.0)

    def test_apply_shrinks_weights(self):
        penalty = L2Penalty(strength=0.1)
        weights = SparseVector({0: 1.0})
        penalty.apply(weights, learning_rate=1.0)
        assert weights[0] == pytest.approx(0.9)

    def test_apply_never_flips_sign(self):
        penalty = L2Penalty(strength=10.0)
        weights = SparseVector({0: 1.0})
        penalty.apply(weights, learning_rate=1.0)
        assert weights[0] == 0.0

    def test_negative_strength_rejected(self):
        with pytest.raises(ConfigurationError):
            L2Penalty(strength=-1.0)


class TestL1Penalty:
    def test_value(self):
        assert L1Penalty(strength=0.5).value(SparseVector({0: -2.0})) == pytest.approx(1.0)

    def test_truncation_drives_small_weights_to_zero(self):
        penalty = L1Penalty(strength=1.0)
        weights = SparseVector({0: 0.5, 1: -2.0})
        penalty.apply(weights, learning_rate=1.0)
        assert 0 not in weights
        assert weights[1] == pytest.approx(-1.0)

    def test_zero_learning_rate_is_noop(self):
        penalty = L1Penalty(strength=1.0)
        weights = SparseVector({0: 0.5})
        penalty.apply(weights, learning_rate=0.0)
        assert weights[0] == 0.5


class TestElasticNet:
    def test_combines_both_penalties(self):
        penalty = ElasticNetPenalty(strength=1.0, ratio=0.5)
        weights = SparseVector({0: 1.0})
        value = penalty.value(weights)
        assert value == pytest.approx(0.5 * 1.0 + 0.5 * 0.5 * 1.0)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            ElasticNetPenalty(ratio=1.5)

    def test_apply_shrinks(self):
        penalty = ElasticNetPenalty(strength=0.2, ratio=0.5)
        weights = SparseVector({0: 1.0})
        penalty.apply(weights, learning_rate=1.0)
        assert 0.0 < weights[0] < 1.0


class TestRegularizerRegistry:
    def test_lookup_by_alias(self):
        assert isinstance(get_regularizer("lasso"), L1Penalty)
        assert isinstance(get_regularizer("ridge"), L2Penalty)

    def test_strength_is_forwarded(self):
        assert get_regularizer("l2", strength=0.25).strength == 0.25

    def test_instance_passthrough(self):
        penalty = L2Penalty()
        assert get_regularizer(penalty) is penalty

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_regularizer("bogus")
