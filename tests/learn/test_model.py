"""Unit tests for LinearModel and ModelDelta."""

from __future__ import annotations

import math

import pytest

from repro.learn.model import LinearModel, sign
from repro.linalg import SparseVector


class TestSign:
    def test_positive(self):
        assert sign(0.5) == 1

    def test_zero_is_positive(self):
        # The paper defines sign(x) = 1 when x >= 0.
        assert sign(0.0) == 1

    def test_negative(self):
        assert sign(-0.1) == -1


class TestLinearModel:
    def test_margin_matches_paper_example(self, simple_model, example_paper_vectors):
        """Example 2.2: with w = (-1, 1), b = 0.5, P1 and P3 are database papers."""
        margins = {
            name: simple_model.margin(vector)
            for name, vector in example_paper_vectors.items()
        }
        assert margins["P1"] == pytest.approx(0.5)   # (-3 + 4) - 0.5
        assert margins["P3"] == pytest.approx(0.5)   # (-1 + 2) - 0.5
        assert margins["P2"] == pytest.approx(-1.5)
        assert margins["P4"] == pytest.approx(-1.5)
        assert margins["P5"] == pytest.approx(-4.5)

    def test_predict_matches_paper_example(self, simple_model, example_paper_vectors):
        labels = {
            name: simple_model.predict(vector)
            for name, vector in example_paper_vectors.items()
        }
        assert labels == {"P1": 1, "P2": -1, "P3": 1, "P4": -1, "P5": -1}

    def test_copy_is_independent(self, simple_model):
        clone = simple_model.copy()
        clone.weights[0] = 99.0
        clone.bias = 7.0
        assert simple_model.weights[0] == -1.0
        assert simple_model.bias == 0.5

    def test_is_zero(self):
        assert LinearModel().is_zero()
        assert not LinearModel(bias=1.0).is_zero()

    def test_norm(self, simple_model):
        assert simple_model.norm(2) == pytest.approx(math.sqrt(2.0))
        assert simple_model.norm(math.inf) == pytest.approx(1.0)

    def test_repr_contains_version(self, simple_model):
        assert "version=1" in repr(simple_model)


class TestModelDelta:
    def test_delta_weights_and_bias(self, simple_model):
        newer = LinearModel(weights=SparseVector({0: -1.0, 1: 2.0}), bias=1.0, version=2)
        delta = newer.delta_from(simple_model)
        assert delta.weight_delta.to_dict() == {1: 1.0}
        assert delta.bias_delta == pytest.approx(0.5)
        assert delta.from_version == 1
        assert delta.to_version == 2

    def test_empty_delta(self, simple_model):
        delta = simple_model.delta_from(simple_model)
        assert delta.is_empty()
        assert delta.magnitude() == 0.0

    def test_weight_norm_for_holder_pairs(self, simple_model):
        newer = simple_model.copy()
        newer.weights = newer.weights.add(SparseVector({0: 0.3, 5: -0.4}))
        delta = newer.delta_from(simple_model)
        assert delta.weight_norm(math.inf) == pytest.approx(0.4)
        assert delta.weight_norm(1) == pytest.approx(0.7)
        assert delta.weight_norm(2) == pytest.approx(0.5)

    def test_magnitude_combines_weights_and_bias(self, simple_model):
        newer = simple_model.copy()
        newer.bias += 3.0
        newer.weights.add_inplace(SparseVector({9: 4.0}))
        delta = newer.delta_from(simple_model)
        assert delta.magnitude() == pytest.approx(5.0)
