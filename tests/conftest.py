"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.learn.model import LinearModel
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector
from repro.workloads.datasets import dblife_like
from repro.workloads.synth_text import SparseCorpusGenerator


@pytest.fixture
def simple_model() -> LinearModel:
    """The model of the paper's Example 2.2: w = (-1, 1), b = 0.5."""
    return LinearModel(weights=SparseVector({0: -1.0, 1: 1.0}), bias=0.5, version=1)


@pytest.fixture
def example_paper_vectors() -> dict[str, SparseVector]:
    """The five papers of Figure 1(A), P1..P5."""
    return {
        "P1": SparseVector({0: 3.0, 1: 4.0}),
        "P2": SparseVector({0: 5.0, 1: 4.0}),
        "P3": SparseVector({0: 1.0, 1: 2.0}),
        "P4": SparseVector({0: 2.0, 1: 1.0}),
        "P5": SparseVector({0: 5.0, 1: 1.0}),
    }


@pytest.fixture
def tiny_corpus() -> list:
    """A small synthetic document corpus (deterministic)."""
    generator = SparseCorpusGenerator(
        vocabulary_size=200, nonzeros_per_document=10, positive_fraction=0.4, seed=7
    )
    return generator.generate_list(120)


@pytest.fixture
def tiny_entities(tiny_corpus) -> list[tuple[int, SparseVector]]:
    """(id, features) pairs for the tiny corpus."""
    return [(doc.entity_id, doc.features) for doc in tiny_corpus]


@pytest.fixture
def tiny_labels(tiny_corpus) -> dict[int, int]:
    """Ground-truth labels for the tiny corpus."""
    return {doc.entity_id: doc.label for doc in tiny_corpus}


@pytest.fixture
def warm_trainer(tiny_corpus) -> SGDTrainer:
    """An SGD trainer warmed up on a sample of the tiny corpus."""
    trainer = SGDTrainer(loss="svm", seed=3)
    rng = random.Random(11)
    for _ in range(80):
        doc = tiny_corpus[rng.randrange(len(tiny_corpus))]
        trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))
    return trainer


@pytest.fixture
def small_dataset():
    """A scaled-down DBLife-like generated dataset."""
    return dblife_like(scale=0.12, seed=5)


def make_examples(corpus, count: int, seed: int = 0) -> list[TrainingExample]:
    """Sample labeled training examples from a synthetic corpus."""
    rng = random.Random(seed)
    examples = []
    for _ in range(count):
        doc = corpus[rng.randrange(len(corpus))]
        examples.append(TrainingExample(doc.entity_id, doc.features, doc.label))
    return examples


@pytest.fixture
def example_factory():
    """Expose :func:`make_examples` to tests as a fixture."""
    return make_examples
