"""The metrics registry: instruments, providers, thread-safety, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_text,
)


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0

    def test_histogram_count_sum_and_quantiles(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.004, 0.1, 2.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(2.107)
        # The median lands inside the bucket holding the third observation.
        assert 0.0 < histogram.quantile(0.5) <= 0.1
        assert histogram.quantile(0.99) <= 10.0

    def test_histogram_bucket_counts_are_cumulative(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        pairs = histogram.bucket_counts()
        assert pairs[-1][0] == float("inf")
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b_total") is registry.counter("a.b_total")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b_total")
        with pytest.raises(ValueError):
            registry.gauge("a.b_total")

    def test_collect_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("z.last_total").inc(3)
        registry.gauge("a.first").set(1)
        registry.histogram("m.mid_seconds").observe(0.01)
        samples = registry.collect()
        names = [sample.name for sample in samples]
        assert names == sorted(names)
        kinds = {sample.name: sample.kind for sample in samples}
        assert kinds["z.last_total"] == "counter"
        assert kinds["a.first"] == "gauge"
        assert kinds["m.mid_seconds_count"] == "histogram"
        assert "m.mid_seconds_p50" in kinds

    def test_provider_sampled_lazily_and_replaceable(self):
        registry = MetricsRegistry()
        state = {"reads_total": 1}
        registry.provider("pull", lambda: state)
        state["reads_total"] = 7
        assert registry.value("pull.reads_total") == 7
        registry.provider("pull", lambda: {"reads_total": 9})
        assert registry.value("pull.reads_total") == 9
        registry.remove_provider("pull")
        assert registry.value("pull.reads_total") is None

    def test_raising_provider_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc()

        def broken():
            raise RuntimeError("shard set shut down")

        registry.provider("broken", broken)
        assert [sample.name for sample in registry.collect()] == ["ok_total"]

    def test_disabled_registry_is_a_noop(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x_total").inc(100)
        NULL_REGISTRY.gauge("y").set(5)
        NULL_REGISTRY.histogram("z_seconds").observe(1.0)
        NULL_REGISTRY.provider("p", lambda: {"v": 1})
        assert NULL_REGISTRY.collect() == []

    def test_disabled_registry_shares_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a_total") is registry.counter("b_total")

    def test_counter_thread_hammer_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        threads = 8
        per_thread = 2_000
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread

    def test_histogram_thread_hammer_is_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer_seconds")
        threads = 6
        per_thread = 1_000

        def worker():
            for _ in range(per_thread):
                histogram.observe(0.001)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert histogram.count == threads * per_thread
        assert histogram.sum == pytest.approx(threads * per_thread * 0.001)


class TestRenderText:
    def test_prometheus_style_exposition(self):
        registry = MetricsRegistry()
        registry.counter("db.reads_total").inc(2)
        registry.gauge("db.resident_pages").set(3)
        text = render_text(registry)
        assert "# TYPE db_reads_total counter" in text
        assert "db_reads_total 2" in text
        assert "db_resident_pages 3" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_text(MetricsRegistry()) == ""
        assert render_text(NULL_REGISTRY) == ""
