"""Per-statement tracing: span trees, the ring, slow-query capture."""

from __future__ import annotations

import pytest

import repro
from repro.obs import Observability, TraceContext, TraceRing, current_trace, use_trace


class TestTraceContext:
    def test_span_tree_parenting(self):
        trace = TraceContext("SELECT 1")
        root = trace.add_span("statement")
        child = trace.add_span("execute", parent_id=root.span_id)
        grandchild = trace.add_span("node:SeqScan(t)", parent_id=child.span_id)
        spans = {span.name: span for span in trace.spans()}
        assert spans["statement"].parent_id is None
        assert spans["execute"].parent_id == root.span_id
        assert spans["node:SeqScan(t)"].parent_id == child.span_id
        assert grandchild.span_id == 3

    def test_finalize_mirrors_totals_onto_root(self):
        trace = TraceContext("SELECT 1")
        trace.add_span("statement")
        trace.finalize(simulated_seconds=0.25, wall_seconds=0.5)
        assert trace.simulated_seconds == 0.25
        assert trace.spans()[0].simulated_seconds == 0.25
        assert trace.spans()[0].wall_seconds == 0.5

    def test_to_rows_and_render(self):
        trace = TraceContext("SELECT x FROM t")
        root = trace.add_span("statement")
        trace.add_span("execute", parent_id=root.span_id, rows=7)
        rows = trace.to_rows()
        assert [row["name"] for row in rows] == ["statement", "execute"]
        assert all(row["sql"] == "SELECT x FROM t" for row in rows)
        rendered = trace.render()
        assert "statement" in rendered
        assert "  execute" in rendered  # children indent under their parent

    def test_current_trace_contextvar(self):
        assert current_trace() is None
        trace = TraceContext("SELECT 1")
        with use_trace(trace):
            assert current_trace() is trace
        assert current_trace() is None


class TestTraceRing:
    def test_bounded_and_ordered(self):
        ring = TraceRing(capacity=3)
        traces = [TraceContext(f"q{i}") for i in range(5)]
        for trace in traces:
            ring.append(trace)
        kept = ring.snapshot()
        assert len(kept) == 3
        assert [t.sql for t in kept] == ["q2", "q3", "q4"]
        ring.clear()
        assert len(ring) == 0


class TestStatementTracing:
    def test_execute_records_full_span_tree(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY, v text)")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        conn.execute("SELECT * FROM t").fetchall()
        trace = conn.database.obs.traces.snapshot()[-1]
        names = [span.name for span in trace.spans()]
        assert names[0] == "statement"
        assert "parse" in names and "plan" in names and "execute" in names
        assert any(name.startswith("node:") for name in names)
        conn.close()

    def test_plan_cache_hit_skips_parse_and_plan_spans(self):
        # Spans record work performed: a cache hit parses and plans nothing.
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        conn.execute("SELECT * FROM t").fetchall()
        conn.execute("SELECT * FROM t").fetchall()
        first, second = conn.database.obs.traces.snapshot()[-2:]
        first_names = [span.name for span in first.spans()]
        assert "parse" in first_names and "plan" in first_names  # the miss
        second_names = [span.name for span in second.spans()]
        assert "parse" not in second_names and "plan" not in second_names
        assert "execute" in second_names
        conn.close()

    def test_disabled_observability_records_nothing(self):
        conn = repro.connect(observability=Observability(enabled=False))
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        conn.execute("SELECT * FROM t").fetchall()
        assert len(conn.database.obs.traces) == 0
        assert conn.database.obs.registry.collect() == []
        conn.close()

    def test_slow_query_threshold_and_counter(self):
        conn = repro.connect()
        conn.database.obs.slow_query_seconds = 0.0  # trap everything
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        conn.execute("SELECT * FROM t").fetchall()
        obs = conn.database.obs
        assert len(obs.slow_queries) > 0
        assert obs.registry.value("sql.slow_queries_total") > 0
        # Raising the threshold stops new captures.
        before = len(obs.slow_queries)
        obs.slow_query_seconds = 1e9
        conn.execute("SELECT * FROM t").fetchall()
        assert len(obs.slow_queries) == before
        conn.close()

    def test_trace_actuals_match_explain_analyze(self):
        """Per-node simulated seconds in the trace == EXPLAIN ANALYZE actuals."""
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
        conn.executemany(
            "INSERT INTO t (id, v) VALUES (?, ?)", [(i, i * 2) for i in range(50)]
        )
        sql = "SELECT * FROM t WHERE v > 10"
        conn.execute(sql).fetchall()
        trace = conn.database.obs.traces.snapshot()[-1]
        node_spans = [s for s in trace.spans() if s.name.startswith("node:")]
        analyze = conn.execute(f"EXPLAIN ANALYZE {sql}").fetchall()
        actuals = {
            row["node"].strip(): row["actual_seconds"]
            for row in analyze
            if "actual_seconds" in row
        }
        assert node_spans, "trace carries no plan-node spans"
        for span in node_spans:
            label = span.name[len("node:") :]
            assert label in actuals
            assert span.simulated_seconds == pytest.approx(actuals[label])
        conn.close()
