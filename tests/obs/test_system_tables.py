"""The ``system.*`` virtual tables through the SQL front door."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import SQLPlanningError
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = (
    "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
    "ENTITIES FROM papers KEY id "
    "LABELS FROM paper_area LABEL label "
    "EXAMPLES FROM example_papers KEY id LABEL label "
    "FEATURE FUNCTION tf_bag_of_words USING SVM"
)


def build_served_connection(count: int = 60, shards: int = 2, seed: int = 23):
    conn = repro.connect()
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    documents = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=seed
    ).generate_list(count)
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    for doc in documents[:12]:
        conn.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )
    conn.execute(VIEW_DDL)
    conn.execute(f"SERVE VIEW labeled_papers WITH (shards = {shards})")
    return conn, documents


class TestSystemMetrics:
    def test_select_star_returns_samples(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        rows = conn.execute("SELECT * FROM system.metrics").fetchall()
        names = {row["name"] for row in rows}
        assert {"name", "kind", "value"} <= set(rows[0])
        assert "db.cost.simulated_seconds_total" in names
        assert "sql.statements_total" in names
        assert any(name.startswith("connection.") for name in names)
        conn.close()

    def test_where_pushdown_over_system_table(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        rows = conn.execute(
            "SELECT value FROM system.metrics WHERE name = 'sql.statements_total'"
        ).fetchall()
        assert len(rows) == 1
        conn.close()

    def test_system_table_scan_is_costless(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        before = conn.database.stats.simulated_seconds
        conn.execute("SELECT * FROM system.metrics").fetchall()
        assert conn.database.stats.simulated_seconds == before
        conn.close()

    def test_joining_a_system_table_is_rejected(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY, v text)")
        with pytest.raises(SQLPlanningError, match="system table"):
            conn.execute("SELECT t.v FROM t JOIN system.metrics ON t.v = name")
        conn.close()


class TestServedViewObservability:
    def test_served_views_row_reflects_live_server(self):
        conn, _ = build_served_connection()
        rows = conn.execute("SELECT * FROM system.served_views").fetchall()
        assert len(rows) == 1
        row = rows[0]
        assert row["view"] == "labeled_papers"
        assert row["num_shards"] == 2
        assert row["entities"] == 60
        conn.execute("STOP SERVING labeled_papers")
        assert conn.execute("SELECT * FROM system.served_views").fetchall() == []
        conn.close()

    def test_slow_served_statement_has_complete_span_tree(self):
        """Acceptance: a forced-slow statement over a live served view lands in
        the slow log with parse → plan → execute → shard spans, and its
        per-node actual seconds equal EXPLAIN ANALYZE's."""
        conn, _ = build_served_connection()
        conn.database.obs.slow_query_seconds = 0.0
        sql = "SELECT * FROM labeled_papers WHERE class = 'database'"
        conn.execute(sql).fetchall()

        slow_rows = conn.execute("SELECT * FROM system.slow_queries").fetchall()
        mine = [row for row in slow_rows if row["sql"] == sql]
        assert mine, "forced-slow statement missing from system.slow_queries"
        assert mine[0]["simulated_seconds"] > 0

        trace = next(
            t for t in reversed(conn.database.obs.slow_queries.snapshot()) if t.sql == sql
        )
        names = [span.name for span in trace.spans()]
        assert names[0] == "statement"
        assert "parse" in names and "plan" in names and "execute" in names
        assert any(name.startswith("serve.") for name in names)
        assert any(name.startswith("shard[") for name in names)

        analyze = conn.execute(f"EXPLAIN ANALYZE {sql}").fetchall()
        actuals = {row["node"].strip(): row["actual_seconds"] for row in analyze}
        node_spans = [s for s in trace.spans() if s.name.startswith("node:")]
        assert node_spans
        for span in node_spans:
            assert span.simulated_seconds == pytest.approx(actuals[span.name[5:]])
        conn.close()

    def test_traces_table_exposes_span_rows(self):
        conn, _ = build_served_connection()
        conn.execute("SELECT * FROM labeled_papers").fetchall()
        rows = conn.execute(
            "SELECT * FROM system.traces WHERE name = 'statement'"
        ).fetchall()
        assert rows
        assert {"trace_id", "span_id", "parent_id", "simulated_seconds"} <= set(rows[0])
        conn.execute("STOP SERVING labeled_papers")
        conn.close()

    def test_serve_metrics_appear_and_disappear_with_lifecycle(self):
        conn, _ = build_served_connection()
        conn.execute("SELECT * FROM labeled_papers").fetchall()
        names = {
            row["name"] for row in conn.execute("SELECT * FROM system.metrics").fetchall()
        }
        assert "serve.labeled_papers.epoch" in names
        assert "serve.labeled_papers.batcher.requests_total" in names
        conn.execute("STOP SERVING labeled_papers")
        names = {
            row["name"] for row in conn.execute("SELECT * FROM system.metrics").fetchall()
        }
        assert not any(name.startswith("serve.") for name in names)
        conn.close()


class TestPlanCacheTable:
    def test_one_row_per_live_connection(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (id integer PRIMARY KEY)")
        conn.execute("SELECT * FROM t").fetchall()  # miss
        conn.execute("SELECT * FROM t").fetchall()  # hit
        rows = conn.execute("SELECT * FROM system.plan_cache").fetchall()
        mine = [row for row in rows if row["connection"] == conn.name]
        assert len(mine) == 1
        assert mine[0]["hits_total"] >= 1
        assert mine[0]["misses_total"] >= 1
        conn.close()
