"""Counter exactness under concurrency: totals must reconcile, not drift.

N client threads hammer a served view with Single Entity reads.  Afterwards
every aggregate the observability layer reports must agree *exactly* with the
ground truth it mirrors:

* the batcher saw exactly ``N * M`` requests (locked counters lose nothing);
* cache hits + misses summed over shards equals the per-shard breakdown
  reported by ``per_shard_stats`` (one source of truth, two views of it);
* the shard ledgers' simulated seconds sum equals the server total that the
  registry mirrors.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = (
    "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
    "ENTITIES FROM papers KEY id "
    "LABELS FROM paper_area LABEL label "
    "EXAMPLES FROM example_papers KEY id LABEL label "
    "FEATURE FUNCTION tf_bag_of_words USING SVM"
)


def test_hammered_served_view_counters_reconcile_exactly():
    threads_n, reads_m = 6, 40
    conn = repro.connect()
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    documents = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=7
    ).generate_list(80)
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    for doc in documents[:12]:
        conn.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )
    conn.execute(VIEW_DDL)
    conn.execute("SERVE VIEW labeled_papers WITH (shards = 3)")
    server = conn.engine.view("labeled_papers").server

    ids = [doc.entity_id for doc in documents]
    barrier = threading.Barrier(threads_n)
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        barrier.wait()
        try:
            for i in range(reads_m):
                server.label_of(ids[(offset * 13 + i) % len(ids)])
        except BaseException as error:  # surface, don't hang the join
            errors.append(error)

    pool = [threading.Thread(target=worker, args=(n,)) for n in range(threads_n)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors

    stats = server.stats()
    per_shard = server.shards.per_shard_stats()

    # Every submitted read was counted, exactly once.
    assert stats["batcher"]["requests_total"] == threads_n * reads_m

    # Aggregated cache counters == sum of the per-shard ground truth.
    for key in ("hits", "misses", "invalidations"):
        assert stats["cache"][f"{key}_total"] == sum(
            shard[f"cache_{key}_total"] for shard in per_shard
        )
    # Every read resolved from cache or store; nothing double- or un-counted.
    assert (
        stats["cache"]["hits_total"] + stats["cache"]["misses_total"]
        == threads_n * reads_m
    )

    # The server's simulated-seconds total is exactly the shard-ledger sum,
    # and the registry mirrors the server number (shards + training cost).
    ledger_sum = sum(shard["simulated_seconds_total"] for shard in per_shard)
    assert server.shards.simulated_seconds() == pytest.approx(ledger_sum)
    mirrored = conn.database.obs.registry.value(
        "serve.labeled_papers.simulated_seconds_total"
    )
    assert mirrored == pytest.approx(server.simulated_seconds())
    assert mirrored >= ledger_sum

    conn.execute("STOP SERVING labeled_papers")
    conn.close()
