"""Unit tests for feature functions (tf, tf-idf, TF-ICF, dense) and the registry."""

from __future__ import annotations

import pytest

from repro.exceptions import FeatureError
from repro.features import (
    DenseColumnsFeature,
    FeatureFunctionRegistry,
    TfBagOfWords,
    TfIcfBagOfWords,
    TfIdfBagOfWords,
    default_registry,
    tokenize,
)
from repro.features.text import Vocabulary


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("data-base, systems!") == ["data", "base", "systems"]

    def test_keeps_numbers(self):
        assert tokenize("vldb 2011") == ["vldb", "2011"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestVocabulary:
    def test_get_or_add_assigns_sequential_indices(self):
        vocab = Vocabulary()
        assert vocab.get_or_add("a") == 0
        assert vocab.get_or_add("b") == 1
        assert vocab.get_or_add("a") == 0

    def test_get_returns_none_for_unknown(self):
        assert Vocabulary().get("missing") is None

    def test_tokens_in_index_order(self):
        vocab = Vocabulary()
        vocab.add_all(["x", "y", "z"])
        assert vocab.tokens() == ["x", "y", "z"]

    def test_contains_and_len(self):
        vocab = Vocabulary()
        vocab.add_all(["a", "b"])
        assert "a" in vocab
        assert len(vocab) == 2


class TestTfBagOfWords:
    def test_counts_term_frequencies(self):
        feature = TfBagOfWords(text_columns=("text",), normalize=False)
        vector = feature.compute_feature({"text": "db db systems"})
        db_index = feature.vocabulary.get("db")
        systems_index = feature.vocabulary.get("systems")
        assert vector[db_index] == 2.0
        assert vector[systems_index] == 1.0

    def test_l1_normalization_default(self):
        feature = TfBagOfWords()
        vector = feature.compute_feature({"text": "a a b b"})
        assert vector.norm(1) == pytest.approx(1.0)

    def test_vocabulary_indices_stable_across_documents(self):
        feature = TfBagOfWords()
        first = feature.compute_feature({"text": "alpha beta"})
        second = feature.compute_feature({"text": "beta gamma"})
        beta = feature.vocabulary.get("beta")
        assert first[beta] > 0 and second[beta] > 0

    def test_multiple_text_columns_concatenated(self):
        feature = TfBagOfWords(text_columns=("title", "abstract"), normalize=False)
        vector = feature.compute_feature({"title": "query", "abstract": "query plans"})
        assert vector[feature.vocabulary.get("query")] == 2.0

    def test_missing_column_treated_as_empty(self):
        feature = TfBagOfWords(text_columns=("title",))
        assert feature.compute_feature({}).nnz() == 0

    def test_dimension_tracks_vocabulary(self):
        feature = TfBagOfWords()
        feature.compute_stats_incremental({"text": "one two three"})
        assert feature.dimension() == 3

    def test_declared_norm_is_l1(self):
        assert TfBagOfWords().norm_q == 1.0


class TestTfIdf:
    def test_requires_stats_before_features(self):
        feature = TfIdfBagOfWords()
        with pytest.raises(FeatureError):
            feature.compute_feature({"text": "db"})

    def test_compute_stats_counts_document_frequencies(self):
        feature = TfIdfBagOfWords()
        feature.compute_stats([{"text": "db systems"}, {"text": "db theory"}])
        db = feature.vocabulary.get("db")
        theory = feature.vocabulary.get("theory")
        assert feature.document_frequency[db] == 2
        assert feature.document_frequency[theory] == 1
        assert feature.document_count == 2

    def test_rare_terms_weighted_higher(self):
        feature = TfIdfBagOfWords(normalize=False)
        feature.compute_stats([{"text": "db systems"}, {"text": "db theory"}, {"text": "db"}])
        vector = feature.compute_feature({"text": "db theory"})
        assert vector[feature.vocabulary.get("theory")] > vector[feature.vocabulary.get("db")]

    def test_incremental_stats_update(self):
        feature = TfIdfBagOfWords()
        feature.compute_stats([{"text": "db"}])
        feature.compute_stats_incremental({"text": "db streams"})
        assert feature.document_count == 2
        assert feature.document_frequency[feature.vocabulary.get("db")] == 2

    def test_l2_normalized_by_default(self):
        feature = TfIdfBagOfWords()
        feature.compute_stats([{"text": "db systems theory"}])
        assert feature.compute_feature({"text": "db systems"}).norm(2) == pytest.approx(1.0)


class TestTfIcf:
    def test_stats_freeze_after_corpus_scan(self):
        feature = TfIcfBagOfWords()
        feature.compute_stats([{"text": "db systems"}, {"text": "db"}])
        assert feature.frozen
        before = dict(feature.corpus_frequency)
        feature.compute_stats_incremental({"text": "db streams streams"})
        assert feature.corpus_frequency == before

    def test_incremental_allowed_until_frozen(self):
        feature = TfIcfBagOfWords()
        feature.compute_stats_incremental({"text": "db"})
        assert feature.corpus_size == 1
        feature.freeze()
        feature.compute_stats_incremental({"text": "db"})
        assert feature.corpus_size == 1

    def test_unseen_terms_get_maximum_icf(self):
        feature = TfIcfBagOfWords(normalize=False)
        feature.compute_stats([{"text": "db db systems"}])
        vector = feature.compute_feature({"text": "db novelterm"})
        assert vector[feature.vocabulary.get("novelterm")] > vector[feature.vocabulary.get("db")]

    def test_feature_computable_before_any_stats(self):
        feature = TfIcfBagOfWords()
        assert feature.compute_feature({"text": "hello"}).nnz() == 1


class TestDenseColumns:
    def test_requires_columns(self):
        with pytest.raises(FeatureError):
            DenseColumnsFeature(columns=())

    def test_vector_positions_follow_declaration_order(self):
        feature = DenseColumnsFeature(columns=("a", "b"), rescale=False, normalize=False)
        vector = feature.compute_feature({"a": 2.0, "b": 5.0})
        assert vector[0] == 2.0
        assert vector[1] == 5.0

    def test_rescaling_to_unit_range(self):
        feature = DenseColumnsFeature(columns=("a",), rescale=True, normalize=False)
        feature.compute_stats([{"a": 0.0}, {"a": 10.0}])
        assert feature.compute_feature({"a": 5.0})[0] == pytest.approx(0.5)

    def test_constant_column_rescales_to_zero(self):
        feature = DenseColumnsFeature(columns=("a",), rescale=True, normalize=False)
        feature.compute_stats([{"a": 3.0}, {"a": 3.0}])
        assert feature.compute_feature({"a": 3.0})[0] == 0.0

    def test_l2_normalization(self):
        feature = DenseColumnsFeature(columns=("a", "b"), rescale=False, normalize=True)
        assert feature.compute_feature({"a": 3.0, "b": 4.0}).norm(2) == pytest.approx(1.0)

    def test_missing_values_read_as_zero(self):
        feature = DenseColumnsFeature(columns=("a", "b"), rescale=False, normalize=False)
        assert feature.compute_feature({"a": 1.0})[1] == 0.0

    def test_fixed_dimension(self):
        assert DenseColumnsFeature(columns=("a", "b", "c")).dimension() == 3


class TestRegistry:
    def test_default_registry_has_paper_functions(self):
        registry = default_registry()
        for name in ("tf_bag_of_words", "tf_idf_bag_of_words", "tf_icf_bag_of_words"):
            assert name in registry

    def test_create_returns_fresh_instances(self):
        registry = default_registry()
        first = registry.create("tf_bag_of_words")
        second = registry.create("tf_bag_of_words")
        assert first is not second

    def test_names_are_case_insensitive(self):
        registry = default_registry()
        assert isinstance(registry.create("TF_BAG_OF_WORDS"), TfBagOfWords)

    def test_unknown_name_raises(self):
        with pytest.raises(FeatureError):
            default_registry().create("unknown_feature")

    def test_duplicate_registration_rejected(self):
        registry = FeatureFunctionRegistry()
        registry.register("custom", TfBagOfWords)
        with pytest.raises(FeatureError):
            registry.register("custom", TfBagOfWords)

    def test_replace_flag_allows_override(self):
        registry = FeatureFunctionRegistry()
        registry.register("custom", TfBagOfWords)
        registry.register("custom", TfIdfBagOfWords, replace=True)
        assert isinstance(registry.create("custom"), TfIdfBagOfWords)

    def test_names_listing(self):
        registry = FeatureFunctionRegistry()
        registry.register("b_feature", TfBagOfWords)
        registry.register("a_feature", TfBagOfWords)
        assert registry.names() == ["a_feature", "b_feature"]
