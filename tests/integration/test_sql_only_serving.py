"""The acceptance scenario of the declarative front door: the complete
create → serve → label → query → checkpoint → kill → restore → re-query cycle
expressed in SQL alone, through :func:`repro.connect` — this module never
imports ``HazyEngine`` or ``ViewServer``."""

from __future__ import annotations

import repro
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = """
    CREATE CLASSIFICATION VIEW labeled_papers KEY id
    ENTITIES FROM papers KEY id
    LABELS FROM paper_area LABEL label
    EXAMPLES FROM example_papers KEY id LABEL label
    FEATURE FUNCTION tf_bag_of_words USING SVM
"""


def corpus(count: int = 150, seed: int = 42):
    return SparseCorpusGenerator(
        vocabulary_size=400, nonzeros_per_document=12, positive_fraction=0.35, seed=seed
    ).generate_list(count)


def create_base_tables(conn, documents):
    """The application's durable state: recreated identically after the 'crash'."""
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )


def label_examples(conn, documents):
    conn.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in documents
        ],
    )


def test_sql_only_end_to_end_checkpoint_restore(tmp_path):
    documents = corpus()
    checkpoint_dir = tmp_path / "ckpt"

    # -- first life: create, serve, label, query, checkpoint ----------------------
    conn = repro.connect()
    create_base_tables(conn, documents)
    conn.execute(VIEW_DDL)
    serve_row = conn.execute(
        "SERVE VIEW labeled_papers WITH (shards = 2, adaptive_batching = true)"
    ).fetchone()
    assert serve_row["status"] == "serving"

    label_examples(conn, documents[:60])

    # Reads route through the server with this connection's session semantics.
    point = conn.execute(
        "SELECT class FROM labeled_papers WHERE id = ?", (documents[0].entity_id,)
    ).scalar()
    assert point in ("database", "not_database")
    count = conn.execute(
        "SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'"
    ).scalar()
    members = conn.execute(
        "SELECT id FROM labeled_papers WHERE class = 'database'"
    ).fetchall()
    assert count == len(members)
    top = conn.execute(
        "SELECT id, margin FROM labeled_papers ORDER BY margin DESC LIMIT 5"
    ).fetchall()
    assert len(top) == 5
    assert all(
        earlier["margin"] >= later["margin"] for earlier, later in zip(top, top[1:])
    )

    # EXPLAIN prints the served plan without executing anything.
    plan = conn.execute(
        "EXPLAIN SELECT class FROM labeled_papers WHERE id = 3"
    ).fetchall()
    assert plan[-1]["node"].strip() == "ServedPointRead(labeled_papers.id = 3)"
    assert plan[-1]["estimated_seconds"] > 0

    everything_before = conn.execute(
        "SELECT id, class FROM labeled_papers ORDER BY id"
    ).fetchall()
    info = conn.execute(f"CHECKPOINT VIEW labeled_papers TO '{checkpoint_dir}'").fetchone()
    assert info["entities"] == len(documents)

    # -- the kill: the process goes away, base tables survive ----------------------
    conn.close()

    # -- second life: same base tables, RESTORE instead of CREATE ------------------
    conn2 = repro.connect()
    create_base_tables(conn2, documents)
    label_examples(conn2, documents[:60])
    restore_row = conn2.execute(
        f"RESTORE VIEW labeled_papers FROM '{checkpoint_dir}'"
    ).fetchone()
    assert restore_row["status"] == "serving"
    assert restore_row["epoch"] == info["epoch"]

    everything_after = conn2.execute(
        "SELECT id, class FROM labeled_papers ORDER BY id"
    ).fetchall()
    assert everything_after == everything_before  # bit-identical answers

    # The restored view is live: new feedback flows through SQL and is
    # observed by this connection's own next read.
    fresh = documents[60:80]
    label_examples(conn2, fresh)
    re_point = conn2.execute(
        "SELECT class FROM labeled_papers WHERE id = ?", (fresh[0].entity_id,)
    ).scalar()
    assert re_point in ("database", "not_database")

    conn2.execute("STOP SERVING labeled_papers")
    # After STOP SERVING the direct maintainer answers the same SQL.
    assert (
        conn2.execute("SELECT COUNT(*) FROM labeled_papers").scalar() == len(documents)
    )
    conn2.close()


def test_restore_rejects_diverged_checkpoint_name(tmp_path):
    documents = corpus(count=40, seed=9)
    conn = repro.connect()
    create_base_tables(conn, documents)
    conn.execute(VIEW_DDL)
    conn.execute("SERVE VIEW labeled_papers")
    conn.execute(f"CHECKPOINT VIEW labeled_papers TO '{tmp_path / 'ck'}'")
    conn.close()

    conn2 = repro.connect()
    create_base_tables(conn2, documents)
    import pytest

    from repro.exceptions import SnapshotMismatchError

    with pytest.raises(SnapshotMismatchError, match="holds view"):
        conn2.execute(f"RESTORE VIEW other_view FROM '{tmp_path / 'ck'}'")
    conn2.close()
