"""Integration tests spanning the SQL layer, the engine, and the workloads."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import HazyEngine
from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.learn.metrics import accuracy, precision_recall
from repro.workloads import dblife_like, forest_like, interleaved_trace
from repro.workloads.synth_text import SparseCorpusGenerator


def paper_portal_database(count: int = 120, seed: int = 17):
    """The running example of the paper: a Web portal of papers to classify."""
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    generator = SparseCorpusGenerator(
        vocabulary_size=400, nonzeros_per_document=10, positive_fraction=0.35, seed=seed
    )
    documents = generator.generate_list(count)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    return db, documents


VIEW_DDL = (
    "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
    "ENTITIES FROM papers KEY id "
    "LABELS FROM paper_area LABEL label "
    "EXAMPLES FROM example_papers KEY id LABEL label "
    "FEATURE FUNCTION tf_bag_of_words USING SVM"
)


class TestPaperPortalScenario:
    @pytest.mark.parametrize(
        "architecture,strategy,approach",
        [
            ("mainmemory", "hazy", "eager"),
            ("mainmemory", "naive", "eager"),
            ("ondisk", "hazy", "eager"),
            ("hybrid", "hazy", "lazy"),
            ("mainmemory", "hazy", "lazy"),
        ],
    )
    def test_feedback_loop_improves_and_stays_consistent(self, architecture, strategy, approach):
        db, documents = paper_portal_database()
        engine = HazyEngine(db, architecture=architecture, strategy=strategy, approach=approach)
        db.execute(VIEW_DDL)
        view = engine.view("labeled_papers")

        rng = random.Random(5)
        labeled = rng.sample(documents, 80)
        for doc in labeled:
            db.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                (doc.entity_id, "database" if doc.label == 1 else "other"),
            )

        # The view stays consistent with its own model on every entity.
        for doc in documents:
            features = view.maintainer.store.get(doc.entity_id).features
            assert view.label_of(doc.entity_id) == view.model.predict(features)

        # And the learned labels beat the majority-class baseline.
        predicted = [view.label_of(doc.entity_id) for doc in documents]
        actual = [doc.label for doc in documents]
        majority = max(actual.count(1), actual.count(-1)) / len(actual)
        assert accuracy(predicted, actual) > majority - 0.05

    def test_sql_count_matches_python_api(self):
        db, documents = paper_portal_database(80)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("labeled_papers")
        for doc in documents[:40]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        sql_count = db.execute(
            "SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'"
        ).scalar()
        assert sql_count == view.count_members(1)

    def test_two_views_over_the_same_entities(self):
        db, documents = paper_portal_database(60)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        db.execute("CREATE TABLE example_papers2 (id integer PRIMARY KEY, label text)")
        db.execute(
            "CREATE CLASSIFICATION VIEW labeled_papers2 KEY id "
            "ENTITIES FROM papers KEY id "
            "LABELS FROM paper_area LABEL label "
            "EXAMPLES FROM example_papers2 KEY id LABEL label "
            "FEATURE FUNCTION tf_idf_bag_of_words"
        )
        first = engine.view("labeled_papers")
        second = engine.view("labeled_papers2")
        first.insert_example(documents[0].entity_id, "database")
        second.insert_example(documents[1].entity_id, "other")
        assert first.model.version == 1
        assert second.model.version == 1
        assert db.execute("SELECT COUNT(*) FROM labeled_papers2").scalar() == 60

    def test_interleaved_updates_and_reads(self):
        dataset = dblife_like(scale=0.1, seed=3)
        db = Database()
        db.execute("CREATE TABLE docs (id integer PRIMARY KEY, body text)")
        db.execute("CREATE TABLE doc_examples (id integer PRIMARY KEY, label integer)")
        # Register entities directly with raw text equal to term indices.
        for entity_id, features in dataset.entities:
            text = " ".join(f"term{i}" for i in features.indices())
            db.execute("INSERT INTO docs (id, body) VALUES (?, ?)", (entity_id, text))
        engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
        db.execute(
            "CREATE CLASSIFICATION VIEW labeled_docs KEY id "
            "ENTITIES FROM docs KEY id "
            "EXAMPLES FROM doc_examples KEY id LABEL label "
            "FEATURE FUNCTION tf_bag_of_words"
        )
        view = engine.view("labeled_docs")
        seen_example_ids = set()
        for kind, payload in interleaved_trace(dataset, updates=30, reads_per_update=3, seed=1):
            if kind == "update":
                if payload.entity_id in seen_example_ids:
                    continue
                seen_example_ids.add(payload.entity_id)
                db.execute(
                    "INSERT INTO doc_examples (id, label) VALUES (?, ?)",
                    (payload.entity_id, payload.label),
                )
            else:
                assert view.label_of(payload) in (-1, 1)
        assert view.maintainer.stats.updates == len(seen_example_ids)


class TestDenseWorkloadThroughEngine:
    def test_forest_like_dense_view(self):
        dataset = forest_like(scale=0.05, seed=2)
        db = Database(cost_model=CostModel.main_memory())
        db.execute("CREATE TABLE measurements (id integer PRIMARY KEY, " +
                   ", ".join(f"f{i} float" for i in range(54)) + ")")
        db.execute("CREATE TABLE measurement_examples (id integer PRIMARY KEY, label integer)")
        for entity_id, features in dataset.entities:
            columns = ["id"] + [f"f{i}" for i in range(54)]
            values = [entity_id] + [features[i] for i in range(54)]
            placeholders = ", ".join("?" for _ in columns)
            db.execute(
                f"INSERT INTO measurements ({', '.join(columns)}) VALUES ({placeholders})",
                values,
            )
        engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
        engine.registry.register(
            "dense54",
            lambda: __import__("repro.features", fromlist=["DenseColumnsFeature"]).DenseColumnsFeature(
                columns=tuple(f"f{i}" for i in range(54)), rescale=False
            ),
        )
        db.execute(
            "CREATE CLASSIFICATION VIEW labeled_measurements KEY id "
            "ENTITIES FROM measurements KEY id "
            "EXAMPLES FROM measurement_examples KEY id LABEL label "
            "FEATURE FUNCTION dense54 USING SVM"
        )
        view = engine.view("labeled_measurements")
        for entity_id, _ in dataset.entities[:100]:
            view.insert_example(entity_id, dataset.labels[entity_id])
        predicted = [view.label_of(entity_id) for entity_id, _ in dataset.entities]
        actual = [dataset.labels[entity_id] for entity_id, _ in dataset.entities]
        precision, recall = precision_recall(predicted, actual)
        assert accuracy(predicted, actual) > 0.5
        assert 0.0 <= precision <= 1.0 and 0.0 <= recall <= 1.0
