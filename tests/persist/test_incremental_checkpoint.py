"""Incremental checkpoints: dirty-shard tracking, parent chains, validation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import HazyEngine
from repro.core.maintainers import HazyEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.exceptions import ConfigurationError, SnapshotCorruptionError
from repro.learn.sgd import SGDTrainer
from repro.linalg import SparseVector
from repro.persist import load_checkpoint
from repro.persist.format import read_frame, write_frame
from repro.serve import ViewServer

from tests.persist.test_checkpoint_restore import (
    build_engine_database,
    cold_engine,
    restore_standalone,
)
from tests.serve.conftest import build_standalone_server


class TestStandaloneIncremental:
    def test_idle_view_rewrites_no_shard_payloads(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        full = server.checkpoint(tmp_path / "full")
        assert full["shards_written"] == 4
        # Nothing moved since the parent: zero shards, zero shard bytes.
        info = server.checkpoint(tmp_path / "inc", incremental=True)
        assert info["shards_written"] == 0
        assert info["shard_bytes"] == 0
        assert info["entities"] == len(corpus)
        contents = server.contents()
        server.close()

        restored = restore_standalone(tmp_path / "inc")
        try:
            assert restored.contents() == contents
        finally:
            restored.close()

    def test_entity_insert_dirties_only_its_shard(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "full")
        new_id = 999_001
        server.insert_entity((new_id, SparseVector({3: 1.0})))
        server.flush()
        info = server.checkpoint(tmp_path / "inc", incremental=True)
        assert info["shards_written"] == 1
        assert info["entities"] == len(corpus) + 1
        contents = server.contents()
        server.close()

        restored = restore_standalone(tmp_path / "inc")
        try:
            after = restored.contents()
            assert after == contents
            assert new_id in after
        finally:
            restored.close()

    def test_model_movement_dirties_every_shard(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "full")
        # A training example moves the model, and the model lives everywhere.
        server.insert_example(corpus[0].entity_id, corpus[0].label == 1)
        server.flush()
        info = server.checkpoint(tmp_path / "inc", incremental=True)
        assert info["shards_written"] == 4
        server.close()

    def test_parent_chain_flattens_references(self, corpus, tmp_path):
        """C3 -> C2 -> C1: unchanged shards must reference real payload files
        directly (C1's), never chase another reference through C2."""
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "c1")
        server.insert_entity((999_001, SparseVector({3: 1.0})))
        server.flush()
        server.checkpoint(tmp_path / "c2", incremental=True)
        server.insert_entity((999_002, SparseVector({5: 1.0})))
        server.flush()
        server.checkpoint(
            tmp_path / "c3", incremental=True, parent=tmp_path / "c2"
        )
        contents = server.contents()
        server.close()

        manifest = load_checkpoint(tmp_path / "c3").manifest
        assert manifest.parent == str(tmp_path / "c2")
        sources = [source for source in manifest.shard_sources if source]
        assert sources, "an idle shard should have been referenced, not rewritten"
        for source in sources:
            # Flattened: a reference points at a real payload file in c1 or
            # c2, never at c3 itself and never through another reference.
            assert Path(source).parent in (tmp_path / "c1", tmp_path / "c2")
            assert Path(source).is_file()

        restored = restore_standalone(tmp_path / "c3")
        try:
            after = restored.contents()
            assert after == contents
            assert {999_001, 999_002} <= set(after)
        finally:
            restored.close()

    def test_incremental_without_parent_is_an_error(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        try:
            server.flush()
            with pytest.raises(ConfigurationError, match="needs a parent"):
                server.checkpoint(tmp_path / "inc", incremental=True)
        finally:
            server.close()

    def test_incremental_rejects_itself_as_parent(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        try:
            server.flush()
            server.checkpoint(tmp_path / "ckpt")
            with pytest.raises(ConfigurationError, match="itself"):
                server.checkpoint(
                    tmp_path / "ckpt", incremental=True, parent=tmp_path / "ckpt"
                )
        finally:
            server.close()

    def test_parent_shard_count_mismatch_is_an_error(self, corpus, tmp_path):
        narrow = build_standalone_server(corpus, num_shards=2)
        narrow.flush()
        narrow.checkpoint(tmp_path / "narrow")
        narrow.close()

        server = build_standalone_server(corpus)
        try:
            server.flush()
            with pytest.raises(ConfigurationError, match="2 shards"):
                server.checkpoint(
                    tmp_path / "inc", incremental=True, parent=tmp_path / "narrow"
                )
        finally:
            server.close()


class TestReferenceIntegrity:
    def _chain(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "full")
        server.insert_entity((999_001, SparseVector({3: 1.0})))
        server.flush()
        server.checkpoint(tmp_path / "inc", incremental=True)
        server.close()

    def _referenced_parent_file(self, tmp_path):
        manifest = load_checkpoint(tmp_path / "inc").manifest
        source = next(source for source in manifest.shard_sources if source)
        return Path(source)

    def test_missing_parent_shard_file_names_the_file(self, corpus, tmp_path):
        self._chain(corpus, tmp_path)
        victim = self._referenced_parent_file(tmp_path)
        victim.unlink()
        with pytest.raises(
            SnapshotCorruptionError, match="references parent shard file"
        ) as excinfo:
            load_checkpoint(tmp_path / "inc")
        assert victim.name in str(excinfo.value)

    def test_rewritten_parent_shard_fails_the_digest_check(self, corpus, tmp_path):
        self._chain(corpus, tmp_path)
        victim = self._referenced_parent_file(tmp_path)
        payload = read_frame(victim)
        write_frame(victim, payload + b" ")  # valid frame, different content
        with pytest.raises(SnapshotCorruptionError, match="content digest"):
            load_checkpoint(tmp_path / "inc")


class TestSQLSurface:
    def _served_engine(self, corpus):
        engine = cold_engine(corpus)
        engine.database.execute("SERVE VIEW Labeled_Papers")
        return engine, engine.view("Labeled_Papers").server

    def test_checkpoint_with_incremental_option(self, corpus, tmp_path):
        engine, server = self._served_engine(corpus)
        db = engine.database
        server.flush()
        db.execute(f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'full'}'")
        db.execute(
            "INSERT INTO papers (id, title) VALUES (900001, 'incremental churn row')"
        )
        server.flush()
        result = db.execute(
            f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'inc'}' "
            "WITH (incremental = true)"
        )
        row = result.rows[0]
        assert row["shards_written"] == 1
        assert row["epoch"] == server.epoch
        server.close()

    def test_checkpoint_with_explicit_parent(self, corpus, tmp_path):
        engine, server = self._served_engine(corpus)
        db = engine.database
        server.flush()
        db.execute(f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'full'}'")
        result = db.execute(
            f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'inc'}' "
            f"WITH (incremental = true, parent = '{tmp_path / 'full'}')"
        )
        assert result.rows[0]["shards_written"] == 0
        server.close()

    def test_checkpoint_option_validation(self, corpus, tmp_path):
        engine, server = self._served_engine(corpus)
        db = engine.database
        try:
            with pytest.raises(ConfigurationError, match="unknown checkpoint option"):
                db.execute(
                    f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'x'}' "
                    "WITH (bogus = true)"
                )
            with pytest.raises(ConfigurationError, match="requires incremental"):
                db.execute(
                    f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'x'}' "
                    f"WITH (parent = '{tmp_path / 'full'}')"
                )
            with pytest.raises(ConfigurationError, match="true or false"):
                db.execute(
                    f"CHECKPOINT VIEW Labeled_Papers TO '{tmp_path / 'x'}' "
                    "WITH (incremental = 3)"
                )
        finally:
            server.close()


class TestRestoreShardMismatch:
    def _engine_checkpoint(self, corpus, tmp_path):
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        return tmp_path / "ckpt"

    def test_sql_restore_rejects_mismatched_shards(self, corpus, tmp_path):
        ckpt = self._engine_checkpoint(corpus, tmp_path)
        restart_db = build_engine_database(corpus)
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        with pytest.raises(ConfigurationError, match="cannot restore with shards=2"):
            restart_db.execute(
                f"RESTORE VIEW Labeled_Papers FROM '{ckpt}' WITH (shards = 2)"
            )
        # The failed restore left the engine clean: the retry (without the
        # conflicting option) succeeds.
        assert "labeled_papers" not in restart.views
        restored = restart.serve("Labeled_Papers", restore_from=ckpt)
        try:
            assert len(restored.shards) == 4
        finally:
            restored.close()

    def test_imperative_restore_rejects_mismatched_shards(self, corpus, tmp_path):
        ckpt = self._engine_checkpoint(corpus, tmp_path)
        restart = HazyEngine(
            build_engine_database(corpus),
            architecture="mainmemory",
            strategy="hazy",
            approach="eager",
        )
        with pytest.raises(ConfigurationError, match="cannot restore with shards=2"):
            restart.serve("Labeled_Papers", restore_from=ckpt, num_shards=2)

    def test_standalone_restore_rejects_mismatched_shards(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        with pytest.raises(ConfigurationError, match="cannot restore with shards=8"):
            ViewServer.restore(
                load_checkpoint(tmp_path / "ckpt"),
                trainer=SGDTrainer(loss="svm", seed=1),
                store_factory=lambda: InMemoryEntityStore(feature_norm_q=1.0),
                maintainer_factory=lambda store: HazyEagerMaintainer(store, alpha=1.0),
                num_shards=8,
            )

    def test_matching_shard_count_is_accepted(self, corpus, tmp_path):
        ckpt = self._engine_checkpoint(corpus, tmp_path)
        restart_db = build_engine_database(corpus)
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        restart_db.execute(
            f"RESTORE VIEW Labeled_Papers FROM '{ckpt}' WITH (shards = 4)"
        )
        restored = restart.view("Labeled_Papers").server
        try:
            assert len(restored.shards) == 4
        finally:
            restored.close()
