"""Unit tests for the diverted-op write-ahead log (repro.persist.wal)."""

from __future__ import annotations

import pytest

from repro.exceptions import SnapshotCorruptionError, SnapshotVersionError
from repro.linalg import SparseVector
from repro.persist.format import WAL_VERSION, pack_wal_record, wal_header
from repro.persist.wal import SEGMENT_SUFFIX, WriteAheadLog

from tests.serve.conftest import build_standalone_server


def segments_of(directory):
    return sorted(directory.glob(f"wal-*{SEGMENT_SUFFIX}"))


class TestAppendReplay:
    def test_round_trip_preserves_rows_and_order(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("entity_insert", {"id": 7, "title": "a row"}, None)
        log.append("entity_insert", (42, SparseVector({0: 1.0, 3: 0.5})), None)
        log.append(
            "entity_update",
            {"id": 7, "title": "changed"},
            {"id": 7, "title": "a row"},
        )
        log.close()

        records = WriteAheadLog(tmp_path, fresh=False).records_after(0)
        assert [record.seq for record in records] == [1, 2, 3]
        assert records[0].kind == "entity_insert"
        assert records[0].row == {"id": 7, "title": "a row"}
        assert records[0].old_row is None
        entity_id, features = records[1].row
        assert entity_id == 42
        assert features == SparseVector({0: 1.0, 3: 0.5})
        assert records[2].old_row == {"id": 7, "title": "a row"}

    def test_records_after_filters_applied_prefix(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        for index in range(5):
            log.append("example_insert", {"id": index, "label": True}, None)
        assert [record.seq for record in log.records_after(3)] == [4, 5]
        assert log.records_after(5) == []

    def test_fresh_open_wipes_stale_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.close()
        assert segments_of(tmp_path)

        wiped = WriteAheadLog(tmp_path, fresh=True)
        assert segments_of(tmp_path) == []
        assert wiped.append("example_insert", {"id": 2, "label": True}, None) == 1

    def test_reopen_continues_the_sequence(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        for index in range(3):
            log.append("example_insert", {"id": index, "label": True}, None)
        log.close()

        survivor = WriteAheadLog(tmp_path, fresh=False)
        assert survivor.append("example_insert", {"id": 99, "label": False}, None) == 4


class TestRotationPruning:
    def test_rotate_closes_the_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        assert not log.rotate()  # nothing written yet
        log.append("example_insert", {"id": 1, "label": True}, None)
        assert log.rotate()
        assert not log.rotate()  # already closed, nothing new
        log.append("example_insert", {"id": 2, "label": True}, None)
        assert len(segments_of(tmp_path)) == 2
        # Records span both segments; replay walks them in order.
        assert [record.seq for record in log.records_after(0)] == [1, 2]

    def test_prune_unlinks_only_fully_applied_closed_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.append("example_insert", {"id": 2, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 3, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 4, "label": True}, None)
        assert len(segments_of(tmp_path)) == 3

        assert log.prune(1) == 0  # first segment still holds seq 2
        assert log.prune(2) == 1  # now fully covered
        # The newest (active) segment is never pruned, however high the seq.
        assert log.prune(100) == 1
        assert len(segments_of(tmp_path)) == 1
        assert [record.seq for record in log.records_after(0)] == [4]

    def test_stats_counters(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 2, "label": True}, None)
        stats = log.stats()
        assert stats["appends_total"] == 2
        assert stats["appended_bytes"] > 0
        assert stats["rotations_total"] == 1
        assert stats["pruned_segments_total"] == 0
        assert stats["segments"] == 2
        assert stats["next_seq"] == 3


class TestTornTails:
    def _torn_log(self, tmp_path, cut: int) -> None:
        log = WriteAheadLog(tmp_path)
        for index in range(3):
            log.append("example_insert", {"id": index, "label": True}, None)
        log.close()
        segment = segments_of(tmp_path)[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) - cut])

    def test_torn_tail_replays_to_last_complete_record(self, tmp_path):
        self._torn_log(tmp_path, cut=5)
        log = WriteAheadLog(tmp_path, fresh=False)
        assert [record.seq for record in log.records_after(0)] == [1, 2]

    def test_torn_tail_never_reuses_a_sequence_number(self, tmp_path):
        # The torn record may have carried seq 3 to a client before the
        # crash; the repaired log must not hand that number out again.
        self._torn_log(tmp_path, cut=5)
        log = WriteAheadLog(tmp_path, fresh=False)
        assert log.append("example_insert", {"id": 9, "label": True}, None) == 3

    def test_open_repairs_the_tip_so_rotation_keeps_it_readable(self, tmp_path):
        # Once repaired and rotated past, the segment is no longer the
        # newest — replay must still read it cleanly.
        self._torn_log(tmp_path, cut=5)
        log = WriteAheadLog(tmp_path, fresh=False)
        log.append("example_insert", {"id": 9, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 10, "label": True}, None)
        assert [record.seq for record in log.records_after(0)] == [1, 2, 3, 4]

    def test_partial_header_counts_as_fully_torn(self, tmp_path):
        # A crash during segment creation can leave fewer bytes than the
        # 8-byte header; the file is one torn tail and gets unlinked, but
        # its reserved first sequence number is still skipped.
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 2, "label": True}, None)
        log.close()
        newest = segments_of(tmp_path)[-1]
        newest.write_bytes(newest.read_bytes()[:3])

        survivor = WriteAheadLog(tmp_path, fresh=False)
        assert [record.seq for record in survivor.records_after(0)] == [1]
        assert survivor.append("example_insert", {"id": 3, "label": True}, None) == 3

    def test_torn_bytes_in_an_older_segment_raise(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.rotate()
        log.append("example_insert", {"id": 2, "label": True}, None)
        log.close()
        oldest = segments_of(tmp_path)[0]
        raw = oldest.read_bytes()
        oldest.write_bytes(raw[: len(raw) - 4])

        survivor = WriteAheadLog(tmp_path, fresh=False)
        with pytest.raises(SnapshotCorruptionError, match="not the newest"):
            survivor.records_after(0)

    def test_version_skew_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.close()
        segment = segments_of(tmp_path)[0]
        raw = segment.read_bytes()
        body = raw[len(wal_header()) :]
        segment.write_bytes(wal_header(WAL_VERSION + 3) + body)
        with pytest.raises(SnapshotVersionError, match="format version"):
            WriteAheadLog(tmp_path, fresh=False).records_after(0)

    def test_bit_flip_inside_a_record_is_a_torn_tail(self, tmp_path):
        # A CRC failure truncates replay at that record, exactly like a
        # short write — recovery keeps the prefix.
        log = WriteAheadLog(tmp_path)
        log.append("example_insert", {"id": 1, "label": True}, None)
        log.append("example_insert", {"id": 2, "label": True}, None)
        log.close()
        segment = segments_of(tmp_path)[0]
        raw = bytearray(segment.read_bytes())
        first_record = pack_wal_record(b"")  # just for sizing the fixed parts
        flip_at = len(raw) - 2
        assert flip_at > len(wal_header()) + len(first_record)
        raw[flip_at] ^= 0xFF
        segment.write_bytes(bytes(raw))
        log = WriteAheadLog(tmp_path, fresh=False)
        assert [record.seq for record in log.records_after(0)] == [1]


class TestServerSurfaces:
    def test_stats_and_metrics_expose_wal_counters(self, corpus, tmp_path):
        server = build_standalone_server(corpus[:40], wal_dir=tmp_path / "wal")
        try:
            session = server.session()
            for doc in corpus[:5]:
                session.insert_example(doc.entity_id, doc.label == 1)
            server.flush()
            stats = server.stats()
            assert stats["wal"]["appends_total"] == 5
            assert stats["wal"]["appended_bytes"] > 0
            metrics = server.metrics()
            assert metrics["wal.appends_total"] == 5
            assert "wal.segments" in metrics
            assert "wal.rotations_total" in metrics
        finally:
            server.close()

    def test_no_wal_means_no_wal_stats(self, corpus):
        server = build_standalone_server(corpus[:40])
        try:
            assert server.wal is None
            assert "wal" not in server.stats()
            assert not any(key.startswith("wal.") for key in server.metrics())
        finally:
            server.close()
