"""Shared fixtures for the persistence tests."""

from __future__ import annotations

import pytest

from repro.workloads.synth_text import SparseCorpusGenerator


@pytest.fixture
def corpus():
    generator = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=13
    )
    return generator.generate_list(200)
