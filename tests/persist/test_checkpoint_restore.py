"""Checkpoint/recovery tests: standalone servers, engine views, crash shapes."""

from __future__ import annotations

import threading

import pytest

from repro import Database, HazyEngine
from repro.core.maintainers import HazyEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.exceptions import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotMismatchError,
    SnapshotVersionError,
    ViewDefinitionError,
)
from repro.features.base import FeatureFunction
from repro.learn.sgd import SGDTrainer
from repro.linalg import SparseVector
from repro.persist import FORMAT_VERSION, MANIFEST_NAME, load_checkpoint
from repro.persist.format import read_frame, write_frame
from repro.serve import ViewServer
from repro.workloads.synth_text import SparseCorpusGenerator

from tests.serve.conftest import build_standalone_server


#: Events driving :class:`BlockingFeatures` (module-level so pickle can see the class).
_FEATURIZE_RELEASE = threading.Event()
_FEATURIZE_ENTERED = threading.Event()


class BlockingFeatures(FeatureFunction):
    """Featurization that parks the maintenance worker inside phase 1."""

    name = "blocking"

    def compute_feature(self, row):
        _FEATURIZE_ENTERED.set()
        _FEATURIZE_RELEASE.wait(timeout=30)
        return SparseVector({0: 1.0})


@pytest.fixture
def corpus():
    generator = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=13
    )
    return generator.generate_list(200)


def restore_standalone(checkpoint_dir) -> ViewServer:
    return ViewServer.restore(
        load_checkpoint(checkpoint_dir),
        trainer=SGDTrainer(loss="svm", seed=1),
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=1.0),
        maintainer_factory=lambda store: HazyEagerMaintainer(store, alpha=1.0),
    )


class TestStandaloneServer:
    def test_round_trip_is_bit_identical(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        session = server.session()
        for doc in corpus[:30]:
            session.insert_example(doc.entity_id, doc.label == 1)
        server.flush()
        before_contents = server.contents()
        before_top = server.top_k(20)
        before_epoch = server.epoch
        info = server.checkpoint(tmp_path / "ckpt")
        server.close()

        assert info["entities"] == len(corpus)
        restored = restore_standalone(tmp_path / "ckpt")
        try:
            assert restored.epoch == before_epoch
            assert restored.contents() == before_contents
            assert restored.top_k(20) == before_top
        finally:
            restored.close()

    def test_restored_server_keeps_serving_writes(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        server.close()

        restored = restore_standalone(tmp_path / "ckpt")
        try:
            session = restored.session()
            for doc in corpus[:15]:
                session.insert_example(doc.entity_id, doc.label == 1)
            assert session.label_of(corpus[0].entity_id) in (-1, 1)
            assert restored.epoch > 0
        finally:
            restored.close()

    def test_checkpoint_readers_stay_live(self, corpus, tmp_path):
        """Reads issued while a checkpoint is being written still complete."""
        server = build_standalone_server(corpus)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            index = 0
            while not stop.is_set():
                try:
                    server.label_of(corpus[index % len(corpus)].entity_id)
                except BaseException as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return
                index += 1

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(3):
                server.checkpoint(tmp_path / f"ckpt-{round_index}")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            server.close()
        assert not errors

    def test_checkpoint_mid_maintenance_batch(self, corpus, tmp_path):
        """A checkpoint taken while a batch trains captures only the published epoch."""
        _FEATURIZE_RELEASE.clear()
        _FEATURIZE_ENTERED.clear()
        server = build_standalone_server(corpus, feature_function=BlockingFeatures())
        session = server.session()
        for doc in corpus[:10]:
            session.insert_example(doc.entity_id, doc.label == 1)
        server.flush()
        published_contents = server.contents()
        published_epoch = server.epoch

        # This entity row blocks the worker inside phase 1 (no locks held) and
        # the example behind it queues up — neither may reach the snapshot.
        server.insert_entity({"id": 999_999})
        assert _FEATURIZE_ENTERED.wait(timeout=10)
        server.insert_example(corpus[11].entity_id, corpus[11].label == 1)
        try:
            server.checkpoint(tmp_path / "ckpt")
        finally:
            _FEATURIZE_RELEASE.set()
        server.flush()
        server.close()

        restored = restore_standalone(tmp_path / "ckpt")
        try:
            assert restored.epoch == published_epoch
            assert restored.contents() == published_contents
            assert 999_999 not in restored.contents()
        finally:
            restored.close()


class TestCrashShapes:
    def _checkpoint(self, corpus, tmp_path):
        server = build_standalone_server(corpus)
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        return tmp_path / "ckpt"

    def test_truncated_shard_file(self, corpus, tmp_path):
        directory = self._checkpoint(corpus, tmp_path)
        shard_file = directory / "shard-0000.hzs"
        raw = shard_file.read_bytes()
        shard_file.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptionError, match="truncated"):
            load_checkpoint(directory)

    def test_version_mismatch(self, corpus, tmp_path):
        directory = self._checkpoint(corpus, tmp_path)
        manifest = directory / MANIFEST_NAME
        payload = read_frame(manifest)
        write_frame(manifest, payload, version=FORMAT_VERSION + 7)
        with pytest.raises(SnapshotVersionError):
            load_checkpoint(directory)

    def test_missing_shard_file_names_the_file(self, corpus, tmp_path):
        """A manifest-listed shard file that vanished is a corruption error
        that says *which* file — not a bare FileNotFoundError."""
        directory = self._checkpoint(corpus, tmp_path)
        (directory / "shard-0002.hzs").unlink()
        with pytest.raises(SnapshotCorruptionError, match="lists shard file") as excinfo:
            load_checkpoint(directory)
        assert "shard-0002.hzs" in str(excinfo.value)

    def test_rewritten_shard_file_fails_the_digest_check(self, corpus, tmp_path):
        """A shard file rewritten after the manifest committed (valid frame,
        different content) fails the manifest's content digest."""
        directory = self._checkpoint(corpus, tmp_path)
        shard_file = directory / "shard-0001.hzs"
        payload = read_frame(shard_file)
        write_frame(shard_file, payload + b" ")
        with pytest.raises(SnapshotCorruptionError, match="content digest"):
            load_checkpoint(directory)

    def test_missing_manifest_means_no_checkpoint(self, corpus, tmp_path):
        directory = self._checkpoint(corpus, tmp_path)
        (directory / MANIFEST_NAME).unlink()
        with pytest.raises(SnapshotCorruptionError, match="missing"):
            load_checkpoint(directory)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            load_checkpoint(tmp_path / "never-written")


DDL = """
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
ENTITIES FROM Papers KEY id
LABELS FROM Paper_Area LABEL label
EXAMPLES FROM Example_Papers KEY id LABEL label
FEATURE FUNCTION tf_bag_of_words
USING SVM
"""


def build_engine_database(corpus, examples: int = 25) -> Database:
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    db.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:examples]
        ],
    )
    return db


def cold_engine(corpus, **engine_options) -> HazyEngine:
    db = build_engine_database(corpus)
    engine = HazyEngine(
        db,
        architecture=engine_options.pop("architecture", "mainmemory"),
        strategy=engine_options.pop("strategy", "hazy"),
        approach=engine_options.pop("approach", "eager"),
        **engine_options,
    )
    db.execute(DDL)
    return engine


class TestEngineWarmRestart:
    def test_restore_matches_cold_state(self, corpus, tmp_path):
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.flush()
        before = server.contents()
        server.checkpoint(tmp_path / "ckpt")
        server.close()

        restart = HazyEngine(
            build_engine_database(corpus),
            architecture="mainmemory",
            strategy="hazy",
            approach="eager",
        )
        restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
        try:
            assert restored.contents() == before
        finally:
            restored.close()
        # After close the direct maintainer answers (the view was handed back).
        view = restart.view("Labeled_Papers")
        assert view.label_of(corpus[0].entity_id) == before[corpus[0].entity_id]

    def test_restore_into_table_that_gained_rows(self, corpus, tmp_path):
        """Rows inserted after the checkpoint (while 'down') are replayed on restore."""
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.flush()
        before = server.contents()
        server.checkpoint(tmp_path / "ckpt")
        server.close()

        extra = SparseCorpusGenerator(
            vocabulary_size=250, nonzeros_per_document=10, positive_fraction=0.4, seed=77
        ).generate_list(12)
        restart_db = build_engine_database(corpus)
        for doc in extra:
            restart_db.execute(
                "INSERT INTO papers (id, title) VALUES (?, ?)",
                (doc.entity_id + 50_000, doc.text),
            )
        restart_db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (extra[0].entity_id + 50_000, "database"),
        )
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
        try:
            after = restored.contents()
            # Every snapshotted entity is still present; every new row was absorbed.
            assert set(after) == set(before) | {doc.entity_id + 50_000 for doc in extra}
            assert restored.epoch > 0  # the replay published at least one epoch
            for doc in extra:
                assert after[doc.entity_id + 50_000] in (-1, 1)
        finally:
            restored.close()

    def test_restore_into_table_that_lost_rows(self, corpus, tmp_path):
        """Entities deleted while 'down' disappear from the restored view."""
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        server.close()

        restart_db = build_engine_database(corpus)
        dropped = corpus[40].entity_id
        restart_db.execute("DELETE FROM papers WHERE id = ?", (dropped,))
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
        try:
            assert dropped not in restored.contents()
        finally:
            restored.close()

    def test_restore_rejects_wrong_view_name(self, corpus, tmp_path):
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        restart = HazyEngine(
            build_engine_database(corpus),
            architecture="mainmemory",
            strategy="hazy",
            approach="eager",
        )
        with pytest.raises(SnapshotMismatchError, match="holds view"):
            restart.serve("Other_View", restore_from=tmp_path / "ckpt")

    def test_restore_rejects_configuration_mismatch(self, corpus, tmp_path):
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        restart = HazyEngine(
            build_engine_database(corpus),
            architecture="ondisk",
            strategy="hazy",
            approach="eager",
        )
        with pytest.raises(SnapshotMismatchError, match="architecture"):
            restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")

    def test_failed_restore_leaves_engine_clean(self, corpus, tmp_path):
        """A restore that dies mid-flight must not poison the engine for a retry."""
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.flush()
        before = server.contents()
        server.checkpoint(tmp_path / "ckpt")
        server.close()

        restart_db = build_engine_database(corpus)
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        with pytest.raises(TypeError):
            restart.serve(
                "Labeled_Papers", restore_from=tmp_path / "ckpt", bogus_option=True
            )
        # Nothing was registered and the triggers were rolled back...
        assert "labeled_papers" not in restart.views
        assert not restart_db.catalog.has_classification_view("Labeled_Papers")
        restart_db.execute(
            "INSERT INTO papers (id, title) VALUES (777001, 'post-failure row')"
        )
        # ...so the retry succeeds and picks up the row inserted in between.
        restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
        try:
            after = restored.contents()
            assert 777001 in after
            assert {k: v for k, v in after.items() if k in before} == before
        finally:
            restored.close()

    def test_restore_rejects_existing_view(self, corpus, tmp_path):
        engine = cold_engine(corpus)
        server = engine.serve("Labeled_Papers")
        server.checkpoint(tmp_path / "ckpt")
        server.close()
        # The same engine already holds the view: restoring over it is an error.
        with pytest.raises(ViewDefinitionError, match="already exists"):
            engine.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
