"""Regression: a content-only UPDATE between checkpoint and restore must be seen.

The warm-restart replay used to diff the base tables against the snapshot by
*key only*: an entity UPDATEd in place while the view was down kept its stale
snapshot features forever.  Checkpoints now store a content hash per row, and
replay re-featurizes any entity whose base-table row no longer matches —
restoring must land bit-identical to a cold rebuild over the updated tables.
"""

from __future__ import annotations

import json

from repro import HazyEngine
from repro.persist import MANIFEST_NAME, load_checkpoint
from repro.persist.checkpoint import shard_file_name
from repro.persist.format import read_frame, write_frame

from tests.persist.test_checkpoint_restore import DDL, build_engine_database


def _engine_over(db) -> HazyEngine:
    return HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")


def _swapped_title(corpus, target) -> str:
    """The target's title with one token swapped for an equal-length one.

    Both the removed and the inserted token first occur in *earlier*
    documents, so the vocabulary's first-occurrence index assignment is
    identical whether the corpus is scanned with the old or the new title —
    which is what makes bit-identical float comparisons against a cold
    rebuild meaningful.  Equal string length keeps the in-place page update
    from overflowing.
    """
    first_seen: dict[str, int] = {}
    target_index = None
    for index, doc in enumerate(corpus):
        if doc.entity_id == target.entity_id:
            target_index = index
        for token in doc.text.split():
            first_seen.setdefault(token, index)
    tokens = target.text.split()
    for position, old in enumerate(tokens):
        if first_seen[old] >= target_index:
            continue
        for new in first_seen:
            if new != old and len(new) == len(old) and first_seen[new] < target_index:
                swapped = list(tokens)
                swapped[position] = new
                return " ".join(swapped)
    raise AssertionError("corpus offers no vocabulary-stable token swap")


def _checkpoint_and_update(corpus, tmp_path):
    """Serve cold, checkpoint, and return the in-place title UPDATE applied
    while the view is 'down' (SQL + params), targeting a non-example entity
    the view currently labels positive (so its margin shows up in ``top_k``)."""
    engine = _engine_over(build_engine_database(corpus))
    engine.database.execute(DDL)
    server = engine.serve("Labeled_Papers")
    server.flush()
    before_top = dict(server.top_k(len(corpus)))
    server.checkpoint(tmp_path / "ckpt")
    server.close()

    example_ids = {doc.entity_id for doc in corpus[:25]}
    target = next(
        doc
        for doc in corpus[25:]
        if doc.entity_id in before_top and doc.entity_id not in example_ids
    )
    new_title = _swapped_title(corpus, target)
    update = ("UPDATE papers SET title = ? WHERE id = ?", (new_title, target.entity_id))
    return target.entity_id, update, before_top


def _cold_reference(corpus, update):
    """A cold CREATE over base tables that already hold the UPDATE."""
    db = build_engine_database(corpus)
    db.execute(*update)
    engine = _engine_over(db)
    db.execute(DDL)
    server = engine.serve("Labeled_Papers")
    server.flush()
    return server


def test_updated_row_is_refeaturized_on_restore(corpus, tmp_path):
    target_id, update, before_top = _checkpoint_and_update(corpus, tmp_path)

    restart_db = build_engine_database(corpus)
    restart_db.execute(*update)
    restart = _engine_over(restart_db)
    restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
    try:
        restored_contents = restored.contents()
        restored_top = restored.top_k(len(corpus))
    finally:
        restored.close()

    cold = _cold_reference(corpus, update)
    try:
        assert restored_contents == cold.contents()
        assert restored_top == cold.top_k(len(corpus))
        # ...and the comparison is not vacuous: the UPDATE moved the margin.
        cold_margins = dict(cold.top_k(len(corpus)) + cold.top_k(len(corpus), label=-1))
        assert cold_margins[target_id] != before_top[target_id]
    finally:
        cold.close()


def test_untouched_restore_stays_bit_identical(corpus, tmp_path):
    """Hash bookkeeping must not perturb the no-churn restore path."""
    engine = _engine_over(build_engine_database(corpus))
    engine.database.execute(DDL)
    server = engine.serve("Labeled_Papers")
    server.flush()
    before_contents = server.contents()
    before_top = server.top_k(len(corpus))
    server.checkpoint(tmp_path / "ckpt")
    server.close()

    restart = _engine_over(build_engine_database(corpus))
    restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
    try:
        assert restored.contents() == before_contents
        assert restored.top_k(len(corpus)) == before_top
        # No churn, no replay: the restore resumes at the snapshot epoch.
        assert restored.epoch == load_checkpoint(tmp_path / "ckpt").manifest.epoch
    finally:
        restored.close()


def _strip_row_hashes(directory, num_shards: int) -> None:
    """Rewrite a checkpoint as a pre-hash writer would have produced it."""
    for index in range(num_shards):
        shard_path = directory / shard_file_name(index)
        document = json.loads(read_frame(shard_path))
        document.pop("row_hashes", None)
        write_frame(shard_path, json.dumps(document, separators=(",", ":")).encode("utf-8"))
    manifest_path = directory / MANIFEST_NAME
    manifest = json.loads(read_frame(manifest_path))
    # The shard files were just rewritten, so the recorded digests are void.
    manifest.pop("shard_shas", None)
    write_frame(manifest_path, json.dumps(manifest, separators=(",", ":")).encode("utf-8"))


def test_legacy_checkpoint_without_hashes_keeps_the_old_contract(corpus, tmp_path):
    """Snapshots without stored hashes replay inserts/deletes only — the
    documented fallback — so the in-place UPDATE is (still) missed.  This is
    the companion proving the regression test above pins real behavior."""
    target_id, update, before_top = _checkpoint_and_update(corpus, tmp_path)
    _strip_row_hashes(tmp_path / "ckpt", num_shards=4)

    restart_db = build_engine_database(corpus)
    restart_db.execute(*update)
    restart = _engine_over(restart_db)
    restored = restart.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
    try:
        # The target keeps its stale pre-update margin, bit for bit.
        assert dict(restored.top_k(len(corpus)))[target_id] == before_top[target_id]
    finally:
        restored.close()
