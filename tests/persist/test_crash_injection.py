"""Crash-injection suite: checkpoint + WAL must recover the pre-crash answers.

Each test builds the crash shape the durability design must survive, then
proves recovery lands **bit-identical** to an uncrashed reference — not just
"no exception".  A crash is simulated by capturing the on-disk state (the
checkpoint directory plus the WAL directory) at the kill point; whatever the
in-memory pipeline held is deliberately thrown away.
"""

from __future__ import annotations

import shutil

import pytest

from repro import HazyEngine
from repro.core.maintainers import HazyEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.exceptions import SnapshotCorruptionError
from repro.learn.sgd import SGDTrainer
from repro.persist import load_checkpoint
from repro.persist.wal import SEGMENT_SUFFIX
from repro.serve import ViewServer
from repro.serve.requests import WriteKind

from tests.persist.test_checkpoint_restore import DDL, build_engine_database
from tests.serve.conftest import build_standalone_server


def restore_with_wal(checkpoint_dir, wal_dir) -> ViewServer:
    return ViewServer.restore(
        load_checkpoint(checkpoint_dir),
        trainer=SGDTrainer(loss="svm", seed=1),
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=1.0),
        maintainer_factory=lambda store: HazyEagerMaintainer(store, alpha=1.0),
        wal_dir=wal_dir,
    )


def answers(server):
    return server.contents(), server.top_k(50), server.top_k(50, label=-1)


class TestStandaloneCrashes:
    def _serve_checkpoint_then_write(self, corpus, tmp_path):
        """Common prologue: serve with a WAL, checkpoint, then keep writing."""
        wal_dir = tmp_path / "wal"
        server = build_standalone_server(corpus, wal_dir=wal_dir)
        session = server.session()
        for doc in corpus[:20]:
            session.insert_example(doc.entity_id, doc.label == 1)
        server.flush()
        server.checkpoint(tmp_path / "ckpt")
        for doc in corpus[20:30]:
            session.insert_example(doc.entity_id, doc.label == 1)
        server.flush()
        return server, wal_dir, tmp_path / "ckpt"

    def test_kill_between_wal_append_and_enqueue(self, corpus, tmp_path):
        """An op the WAL holds but the queue never saw is applied on recovery.

        The uncrashed twin restores from the same checkpoint with the same
        WAL *minus* the dangling record and then applies the op through the
        normal write path — recovery must land on the same answers, margin
        for margin (same SGD step order, same model bits).
        """
        server, wal_dir, ckpt = self._serve_checkpoint_then_write(corpus, tmp_path)
        twin_wal = tmp_path / "wal-twin"
        shutil.copytree(wal_dir, twin_wal)

        extra = corpus[30]
        # The crash point: _enqueue_logged appended, then died before enqueue.
        server.wal.append(
            WriteKind.EXAMPLE_INSERT.value,
            {"id": extra.entity_id, "label": extra.label == 1},
            None,
        )
        server.close()  # cleanup only; the disk state above is what recovery sees

        recovered = restore_with_wal(ckpt, wal_dir)
        try:
            assert recovered.replay_wal() == 11  # 10 queued post-ckpt + the dangler
            recovered_answers = answers(recovered)
        finally:
            recovered.close()

        twin = restore_with_wal(ckpt, twin_wal)
        try:
            assert twin.replay_wal() == 10
            twin.insert_example(extra.entity_id, extra.label == 1)
            twin.flush()
            assert recovered_answers == answers(twin)
        finally:
            twin.close()

    def test_kill_between_shard_writes_and_manifest(self, corpus, tmp_path, monkeypatch):
        """A checkpoint that dies before its manifest rename never happened.

        The orphaned shard files are inert (no manifest, no checkpoint), and
        because the WAL prunes only *after* the manifest commit, recovery
        from the previous checkpoint still has every record it needs.
        """
        server, wal_dir, ckpt = self._serve_checkpoint_then_write(corpus, tmp_path)
        reference = answers(server)

        import repro.serve.server as server_module

        def crash_before_manifest(directory, manifest):
            raise OSError("simulated crash before the manifest rename")

        monkeypatch.setattr(server_module, "write_manifest", crash_before_manifest)
        with pytest.raises(OSError, match="simulated crash"):
            server.checkpoint(tmp_path / "ckpt-2")
        server.close()

        # The torn checkpoint does not exist as far as recovery is concerned...
        with pytest.raises(SnapshotCorruptionError, match="missing"):
            load_checkpoint(tmp_path / "ckpt-2")
        # ...and the survivor plus the unpruned WAL reproduce the lost state.
        recovered = restore_with_wal(ckpt, wal_dir)
        try:
            recovered.replay_wal()
            assert answers(recovered) == reference
        finally:
            recovered.close()

    def test_torn_wal_tail_replays_to_last_complete_record(self, corpus, tmp_path):
        """A record torn mid-append is dropped; everything published survives.

        The torn op was never acknowledged complete (the append did not
        return), so losing it is correct — recovery must match the last
        published pre-crash state exactly.
        """
        server, wal_dir, ckpt = self._serve_checkpoint_then_write(corpus, tmp_path)
        reference = answers(server)

        server.wal.append(
            WriteKind.EXAMPLE_INSERT.value,
            {"id": corpus[35].entity_id, "label": True},
            None,
        )
        server.close()
        newest = sorted(wal_dir.glob(f"wal-*{SEGMENT_SUFFIX}"))[-1]
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) - 7])  # tear mid-record

        recovered = restore_with_wal(ckpt, wal_dir)
        try:
            recovered.replay_wal()
            assert answers(recovered) == reference
        finally:
            recovered.close()


class TestEngineCrashes:
    def test_engine_recovery_replays_wal_in_arrival_order(self, corpus, tmp_path):
        """End-to-end: SQL serve WITH (wal=...), DML churn, crash, SQL restore.

        The post-checkpoint churn mixes an entity INSERT, an in-place UPDATE,
        and a training-example INSERT — the WAL preserves their arrival
        order, which a base-table diff alone cannot, so the recovered model
        (and with it every margin) matches the pre-crash server bitwise.
        """
        wal_dir = tmp_path / "wal"
        engine = HazyEngine(
            build_engine_database(corpus),
            architecture="mainmemory",
            strategy="hazy",
            approach="eager",
        )
        db = engine.database
        db.execute(DDL)
        db.execute(f"SERVE VIEW Labeled_Papers WITH (wal = '{wal_dir}')")
        server = engine.view("Labeled_Papers").server
        assert server.wal is not None
        server.flush()
        server.checkpoint(tmp_path / "ckpt")

        churn = [
            ("INSERT INTO papers (id, title) VALUES (?, ?)", (900_001, corpus[7].text)),
            (
                "UPDATE papers SET title = ? WHERE id = ?",
                (corpus[8].text, corpus[40].entity_id),
            ),
            (
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                (corpus[30].entity_id, "database"),
            ),
        ]
        for sql, params in churn:
            db.execute(sql, params)
        server.flush()
        reference = answers(server)
        server.close()  # cleanup only; ckpt + WAL on disk are the crash state

        # The base tables are durable: rebuild them with the same churn applied.
        restart_db = build_engine_database(corpus)
        for sql, params in churn:
            restart_db.execute(sql, params)
        restart = HazyEngine(
            restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
        )
        restart_db.execute(
            f"RESTORE VIEW Labeled_Papers FROM '{tmp_path / 'ckpt'}' WITH (wal = '{wal_dir}')"
        )
        restored = restart.view("Labeled_Papers").server
        try:
            assert restored.wal is not None
            assert answers(restored) == reference
        finally:
            restored.close()
