"""export_state / import_state across all three store architectures."""

from __future__ import annotations

import pytest

from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.learn.model import LinearModel
from repro.linalg import SparseVector
from repro.workloads.synth_text import SparseCorpusGenerator

ARCHITECTURES = ["mainmemory", "ondisk", "hybrid"]


def make_store(architecture: str):
    if architecture == "mainmemory":
        return InMemoryEntityStore(feature_norm_q=1.0)
    if architecture == "ondisk":
        return OnDiskEntityStore(feature_norm_q=1.0)
    return HybridEntityStore(feature_norm_q=1.0, buffer_fraction=0.05)


@pytest.fixture(scope="module")
def loaded_inputs():
    corpus = SparseCorpusGenerator(
        vocabulary_size=120, nonzeros_per_document=8, positive_fraction=0.4, seed=3
    ).generate_list(80)
    entities = [(doc.entity_id, doc.features) for doc in corpus]
    model = LinearModel(weights=SparseVector({1: 0.4, 5: -0.7, 9: 0.2}), bias=0.05, version=3)
    return entities, model


@pytest.mark.parametrize("architecture", ARCHITECTURES)
class TestStoreStateRoundTrip:
    def test_round_trip_preserves_every_record(self, architecture, loaded_inputs):
        entities, model = loaded_inputs
        source = make_store(architecture)
        source.bulk_load(entities, model)
        state = source.export_state()

        target = make_store(architecture)
        target.import_state(state)

        assert target.count() == source.count()
        assert target.max_feature_norm == source.max_feature_norm
        for label in (1, -1):
            assert target.count_label(label) == source.count_label(label)
        source_records = {r.entity_id: (r.eps, r.label) for r in source.scan_all()}
        target_records = {r.entity_id: (r.eps, r.label) for r in target.scan_all()}
        assert target_records == source_records

    def test_import_preserves_clustering_order(self, architecture, loaded_inputs):
        entities, model = loaded_inputs
        source = make_store(architecture)
        source.bulk_load(entities, model)
        target = make_store(architecture)
        target.import_state(source.export_state())
        eps_order = [record.eps for record in target.scan_all()]
        assert eps_order == sorted(eps_order)
        # Band scans answer identically after the import.
        low, high = eps_order[len(eps_order) // 4], eps_order[3 * len(eps_order) // 4]
        assert [r.entity_id for r in target.scan_eps_range(low, high)] == [
            r.entity_id for r in source.scan_eps_range(low, high)
        ]

    def test_import_is_cheaper_than_bulk_load(self, architecture, loaded_inputs):
        entities, model = loaded_inputs
        source = make_store(architecture)
        load_cost = source.bulk_load(entities, model)
        target = make_store(architecture)
        import_cost = target.import_state(source.export_state())
        assert import_cost < load_cost

    def test_import_charges_snapshot_read(self, architecture, loaded_inputs):
        entities, model = loaded_inputs
        source = make_store(architecture)
        source.bulk_load(entities, model)
        state = source.export_state()
        state["payload_bytes"] = 64 * 1024
        target = make_store(architecture)
        target.import_state(state)
        assert "snapshot_read" in target.stats.detail


def test_hybrid_import_rebuilds_epsmap_and_buffer(loaded_inputs):
    entities, model = loaded_inputs
    source = HybridEntityStore(feature_norm_q=1.0, buffer_fraction=0.1)
    source.bulk_load(entities, model)
    target = HybridEntityStore(feature_norm_q=1.0, buffer_fraction=0.1)
    target.import_state(source.export_state())
    # Every entity answers through the eps-map without touching disk.
    for entity_id, _ in entities:
        assert target.eps_hint(entity_id) is not None
    assert target.buffer_size() == source.buffer_size()
