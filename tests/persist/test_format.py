"""Frame-level tests: round trips and every crash shape the format must catch."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SnapshotCorruptionError, SnapshotVersionError
from repro.persist.format import (
    FORMAT_VERSION,
    read_frame,
    read_json_frame,
    write_frame,
    write_json_frame,
)


class TestRoundTrip:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "frame.hzs"
        payload = b"\x00\x01binary payload\xff" * 100
        written = write_frame(path, payload)
        assert written == path.stat().st_size
        assert read_frame(path) == payload

    def test_json_round_trip_preserves_floats_exactly(self, tmp_path):
        path = tmp_path / "frame.hzs"
        document = {"eps": [0.1 + 0.2, 1e-300, -3.141592653589793], "label": -1}
        write_json_frame(path, document)
        assert read_json_frame(path) == document

    def test_empty_payload(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"")
        assert read_frame(path) == b""


class TestCrashShapes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotCorruptionError, match="missing"):
            read_frame(tmp_path / "nope.hzs")

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"payload")
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(SnapshotCorruptionError, match="truncated"):
            read_frame(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"a long enough payload to cut")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])
        with pytest.raises(SnapshotCorruptionError, match="truncated"):
            read_frame(path)

    def test_bit_flip_fails_crc(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"sensitive state bytes")
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptionError, match="CRC"):
            read_frame(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"payload")
        raw = bytearray(path.read_bytes())
        raw[0:6] = b"NOTSNP"
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptionError, match="magic"):
            read_frame(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"payload", version=FORMAT_VERSION + 1)
        with pytest.raises(SnapshotVersionError, match="version"):
            read_frame(path)

    def test_valid_crc_but_bad_json(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_frame(path, b"this is not json")
        with pytest.raises(SnapshotCorruptionError, match="JSON"):
            read_json_frame(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "frame.hzs"
        write_json_frame(path, {"ok": True})
        assert [p.name for p in tmp_path.iterdir()] == ["frame.hzs"]
        assert json.loads(read_frame(path)) == {"ok": True}
