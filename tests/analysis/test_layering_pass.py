"""LAY001/LAY002 against the layering fixtures: exact rules and lines."""

from __future__ import annotations

from repro.analysis.passes.layering import LayeringPass


def test_clean_fixture_has_no_findings(run_pass):
    active, suppressed = run_pass(LayeringPass(), "lay_clean.py")
    assert active == []
    assert suppressed == []


def test_bad_fixture_lines_and_rules(run_pass):
    active, suppressed = run_pass(LayeringPass(), "lay_bad.py")
    assert suppressed == []
    assert [(f.rule, f.line) for f in active] == [
        ("LAY001", 4),  # db -> serve, top-level
        ("LAY002", 5),  # from repro import connect (facade attribute)
        ("LAY001", 9),  # db -> net, lazy/function-local
    ]
    assert all(f.path == "lay_bad.py" for f in active)


def test_lazy_imports_are_still_violations(run_pass):
    active, _ = run_pass(LayeringPass(), "lay_bad.py")
    lazy = [f for f in active if f.line == 9]
    assert len(lazy) == 1
    assert "net" in lazy[0].message
