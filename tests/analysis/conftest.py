"""Shared helpers for the static-analysis tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.runner import AnalysisPass, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture
def run_pass():
    """Run one pass over named fixture files; paths in findings are bare names."""

    def _run(analysis_pass: AnalysisPass, *names: str):
        paths = [FIXTURES / name for name in names]
        return analyze_paths(paths, passes=[analysis_pass], repo_root=FIXTURES)

    return _run
