"""LOCK001/LOCK002 against the lock-discipline fixtures."""

from __future__ import annotations

from repro.analysis.passes.locks import LockDisciplinePass


def test_clean_fixture_has_no_findings(run_pass):
    active, suppressed = run_pass(LockDisciplinePass(), "lock_clean.py")
    assert active == []
    assert suppressed == []


def test_bad_fixture_lines_and_rules(run_pass):
    active, suppressed = run_pass(LockDisciplinePass(), "lock_bad.py")
    assert [(f.rule, f.line) for f in active] == [
        ("LOCK001", 18),  # self.count += 1 without the lock
        ("LOCK001", 21),  # self.items.append(1) without the lock
        ("LOCK002", 25),  # Future.result() under the lock
        ("LOCK002", 29),  # sock.sendall() under the lock
    ]
    assert [(f.rule, f.line) for f in suppressed] == [("LOCK001", 32)]


def test_locked_marker_counts_as_held(run_pass):
    # lock_clean.py's drain() mutates guarded state with no `with` block but
    # carries `# repro: locked(_lock)`; a finding there would surface above.
    active, _ = run_pass(LockDisciplinePass(), "lock_clean.py")
    assert active == []
