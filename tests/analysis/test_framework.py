"""Runner, suppression, baseline, and CLI self-checks."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import Baseline, split_by_baseline
from repro.analysis.cli import main
from repro.analysis.findings import Finding
from repro.analysis.passes.locks import LockDisciplinePass
from repro.analysis.runner import analyze_paths, load_module


def test_noqa_directive_moves_finding_to_suppressed(fixtures_dir):
    active, suppressed = analyze_paths(
        [fixtures_dir / "lock_bad.py"],
        passes=[LockDisciplinePass()],
        repo_root=fixtures_dir,
    )
    assert ("LOCK001", 32) in [(f.rule, f.line) for f in suppressed]
    assert ("LOCK001", 32) not in [(f.rule, f.line) for f in active]


def test_noqa_all_suppresses_every_rule(tmp_path):
    path = tmp_path / "blanket.py"
    path.write_text(
        "# repro: module(repro.db.table)\n"
        "from repro.serve.server import ViewServer  # repro: noqa(ALL)\n",
        encoding="utf-8",
    )
    active, suppressed = analyze_paths([path], repo_root=tmp_path)
    assert active == []
    assert [f.rule for f in suppressed] == ["LAY001"]


def test_module_directive_overrides_derived_name(fixtures_dir):
    ctx = load_module(fixtures_dir / "lay_bad.py")
    assert ctx.module == "repro.db.table"


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n", encoding="utf-8")
    active, suppressed = analyze_paths([path], repo_root=tmp_path)
    assert suppressed == []
    assert len(active) == 1
    assert active[0].rule == "PARSE001"
    assert active[0].line == 1


def test_baseline_write_load_round_trip(tmp_path):
    findings = [
        Finding(path="a.py", line=3, rule="LAY001", message="up-import"),
        Finding(path="a.py", line=9, rule="LAY001", message="up-import"),
        Finding(path="b.py", line=1, rule="COST001", message="raw heap"),
    ]
    notes = {("b.py", "COST001", "raw heap"): "kept: migration pending"}
    baseline = Baseline.from_findings(findings, notes=notes)
    target = tmp_path / "baseline.json"
    baseline.write(target)

    loaded = Baseline.load(target)
    assert loaded.counts == baseline.counts
    assert loaded.notes == notes

    raw = json.loads(target.read_text(encoding="utf-8"))
    duplicated = [e for e in raw["entries"] if e["path"] == "a.py"]
    assert duplicated[0]["count"] == 2


def test_baseline_matching_ignores_line_numbers():
    baseline = Baseline.from_findings(
        [Finding(path="a.py", line=3, rule="LAY001", message="up-import")]
    )
    moved = Finding(path="a.py", line=77, rule="LAY001", message="up-import")
    new, known = split_by_baseline([moved], baseline)
    assert new == []
    assert known == [moved]


def test_baseline_excess_occurrence_is_new_debt():
    baseline = Baseline.from_findings(
        [Finding(path="a.py", line=3, rule="LAY001", message="up-import")]
    )
    first = Finding(path="a.py", line=3, rule="LAY001", message="up-import")
    second = Finding(path="a.py", line=40, rule="LAY001", message="up-import")
    new, known = split_by_baseline([second, first], baseline)
    assert known == [first]  # earliest line consumes the budget
    assert new == [second]


def test_missing_baseline_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").counts == {}


def test_cli_exit_codes(fixtures_dir, tmp_path, capsys):
    assert main(["--list-rules"]) == 0
    assert "LAY001" in capsys.readouterr().out

    assert main([str(tmp_path / "nope.py")]) == 2

    assert main([str(fixtures_dir / "lay_clean.py"), "--no-baseline"]) == 0
    capsys.readouterr()

    assert main([str(fixtures_dir / "lay_bad.py"), "--no-baseline"]) == 1
    out = capsys.readouterr()
    assert "LAY001" in out.out
    assert "new finding(s)" in out.err


def test_cli_write_baseline_then_clean(fixtures_dir, tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    bad = str(fixtures_dir / "lay_bad.py")

    assert main([bad, "--baseline", str(baseline_path), "--write-baseline"]) == 0
    assert baseline_path.exists()
    capsys.readouterr()

    # The same findings are now all baselined, so the gate passes.
    assert main([bad, "--baseline", str(baseline_path)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().err


def test_cli_show_suppressed_lists_noqa_findings(fixtures_dir, capsys):
    main([str(fixtures_dir / "lock_bad.py"), "--no-baseline", "--show-suppressed"])
    assert "[suppressed]" in capsys.readouterr().out


def test_findings_render_as_path_line_rule(tmp_path):
    finding = Finding(path=Path("x/y.py").as_posix(), line=7, rule="LOCK001", message="m")
    assert finding.render() == "x/y.py:7: LOCK001 m"
