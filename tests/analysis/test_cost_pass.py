"""COST001/COST002 against the cost-charging fixtures."""

from __future__ import annotations

from repro.analysis.passes.costs import CostChargingPass


def test_clean_fixture_has_no_findings(run_pass):
    active, suppressed = run_pass(CostChargingPass(), "cost_clean.py")
    assert active == []
    assert suppressed == []


def test_bad_fixture_lines_and_rules(run_pass):
    active, suppressed = run_pass(CostChargingPass(), "cost_bad.py")
    assert suppressed == []
    assert [(f.rule, f.line) for f in active] == [
        ("COST001", 4),  # from repro.db.heap import HeapFile
        ("COST002", 13),  # heap.read() outside the owner modules
        ("COST002", 16),  # pool.fetch() outside the owner modules
    ]


def test_constructing_the_imported_class_is_not_double_counted(run_pass):
    # HeapFile(path) on line 20 is a plain Name call; only the import fires.
    active, _ = run_pass(CostChargingPass(), "cost_bad.py")
    assert all(f.line != 20 for f in active)
