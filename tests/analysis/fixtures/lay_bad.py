# repro: module(repro.db.table)
"""Layering fixture: a db-layer module importing upward and the facade."""

from repro.serve.server import ViewServer  # line 4: upward (db -> serve) = LAY001
from repro import connect  # line 5: facade attribute import = LAY002


def lazy_upward():
    import repro.net.protocol  # line 9: lazy upward (db -> net) = LAY001

    return repro.net.protocol, ViewServer, connect
