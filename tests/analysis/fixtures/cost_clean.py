# repro: module(repro.serve.cost_fixture_clean)
"""Cost fixture: constructing pools / reading IOStatistics is charge-neutral."""

from repro.db.buffer_pool import BufferPool, IOStatistics


def build(capacity):
    pool = BufferPool(capacity=capacity)
    stats = IOStatistics()
    return pool.stats, stats
