# repro: module(repro.exceptions)
"""Wire fixture: every subclass is rebuildable as cls(message)."""


class HazyError(Exception):
    pass


class PlainError(HazyError):
    pass


class DiagnosticError(HazyError):
    def __init__(self, message, position=None, token=None):
        super().__init__(message)
        self.position = position
        self.token = token


class DeepError(DiagnosticError):
    pass
