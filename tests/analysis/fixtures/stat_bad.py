# repro: module(repro.serve.stat_fixture_bad)
"""Stats fixture: keys violating the grammar or using deprecated suffixes."""


class Component:
    def __init__(self, registry):
        registry.counter("serve.fixture.Reads-Total")  # line 7: bad grammar = STAT001

    def stats(self):
        out = {
            "readCount": 1,  # line 11: camelCase segment = STAT001
            "reads_count": 2,  # line 12: deprecated _count = STAT002
            "wait_ms": 3.0,  # line 13: deprecated _ms = STAT002
        }
        out["flush_secs"] = 4.0  # line 15: deprecated _secs = STAT002
        return out
