# repro: module(repro.serve.stat_fixture_clean)
"""Stats fixture: canonical snake_case keys with canonical unit suffixes."""


class Component:
    def __init__(self, registry):
        self.reads_total = 0
        self.wait_seconds = 0.0
        self.spill_bytes = 0
        self.backlog = 0
        registry.counter("serve.fixture.reads_total")
        registry.histogram("serve.fixture.wait_seconds")

    def stats(self):
        return {
            "reads_total": self.reads_total,
            "wait_seconds": self.wait_seconds,
            "spill_bytes": self.spill_bytes,
            "backlog": self.backlog,
        }
