# repro: module(repro.serve.lock_fixture_bad)
"""Lock fixture: torn counters and blocking work under a held lock."""

import threading


class Torn:
    _GUARDED_BY = {"count": "_lock", "items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.items = []
        self.future = None
        self.sock = None

    def bump(self):
        self.count += 1  # line 18: no lock held = LOCK001

    def collect(self):
        self.items.append(1)  # line 21: mutator without lock = LOCK001

    def wait_under_lock(self):
        with self._lock:
            return self.future.result()  # line 25: blocking under lock = LOCK002

    def send_under_lock(self, payload):
        with self._lock:
            self.sock.sendall(payload)  # line 29: socket write under lock = LOCK002

    def suppressed_bump(self):
        self.count += 1  # single-writer by design  # repro: noqa(LOCK001)
