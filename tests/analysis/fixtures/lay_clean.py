# repro: module(repro.serve.widget)
"""Layering fixture: a serve-layer module importing strictly downward."""

from repro.core.engine import HazyEngine
from repro.db.schema import Schema
from repro.exceptions import HazyError


def lazy_downward():
    from repro.obs.registry import MetricsRegistry

    return MetricsRegistry, HazyEngine, Schema, HazyError
