# repro: module(repro.serve.cost_fixture_bad)
"""Cost fixture: raw storage structures touched outside the owner modules."""

from repro.db.heap import HeapFile  # line 4: raw heap import = COST001


class FreeRider:
    def __init__(self, heap, pool):
        self.heap = heap
        self.pool = pool

    def sneak_read(self, rid):
        return self.heap.read(rid)  # line 13: uncharged heap read = COST002

    def sneak_page(self, page_id):
        return self.pool.fetch(page_id)  # line 16: raw page fetch = COST002


def build(path):
    return HeapFile(path)
