# repro: module(repro.net.protocol)
"""Wire fixture: a protocol module whose diagnostic fields drifted."""

_DIAGNOSTIC_FIELDS = ("position",)  # line 4: missing 'token' = WIRE002
