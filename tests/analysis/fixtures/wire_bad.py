# repro: module(repro.exceptions)
"""Wire fixture: subclasses the error codec cannot reconstruct."""


class HazyError(Exception):
    pass


class NeedsCode(HazyError):
    def __init__(self, message, code):  # line 10: required extra arg = WIRE001
        super().__init__(message)
        self.code = code


class NoMessage(HazyError):
    def __init__(self):  # line 16: cannot accept message = WIRE001
        super().__init__("fixed")


class NeedsKeyword(HazyError):
    def __init__(self, message, *, lane):  # line 21: required kwonly = WIRE001
        super().__init__(message)
        self.lane = lane


class FineAnyway(HazyError):
    def __init__(self, message, detail=None):
        super().__init__(message)
        self.detail = detail
