# repro: module(repro.serve.lock_fixture_clean)
"""Lock fixture: every guarded mutation happens under its declared lock."""

import threading


class Guarded:
    _GUARDED_BY = {"count": "_lock", "items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # __init__ is exempt: no concurrency before construction
        self.items = []

    def bump(self):
        with self._lock:
            self.count += 1
            self.items.append(self.count)

    def drain(self):  # repro: locked(_lock)
        self.items.clear()
        self.count = 0
