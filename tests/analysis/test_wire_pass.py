"""WIRE001/WIRE002 against the wire-error fixtures."""

from __future__ import annotations

from repro.analysis.passes.wire import WireErrorPass


def test_clean_fixture_has_no_findings(run_pass):
    active, suppressed = run_pass(WireErrorPass(), "wire_clean.py")
    assert active == []
    assert suppressed == []


def test_bad_fixture_lines_and_rules(run_pass):
    active, suppressed = run_pass(WireErrorPass(), "wire_bad.py")
    assert suppressed == []
    assert [(f.rule, f.line) for f in active] == [
        ("WIRE001", 10),  # NeedsCode: required positional beyond the message
        ("WIRE001", 16),  # NoMessage: __init__ accepts no message
        ("WIRE001", 21),  # NeedsKeyword: required keyword-only argument
    ]
    names = [f.message.split(".")[0] for f in active]
    assert names == ["NeedsCode", "NoMessage", "NeedsKeyword"]


def test_optional_extras_are_allowed(run_pass):
    # FineAnyway(message, detail=None) at line 27 must not fire.
    active, _ = run_pass(WireErrorPass(), "wire_bad.py")
    assert all(f.line < 26 for f in active)


def test_protocol_field_drift_fires_wire002(run_pass):
    active, _ = run_pass(WireErrorPass(), "wire_protocol_bad.py")
    assert [(f.rule, f.line) for f in active] == [("WIRE002", 4)]
    assert "token" in active[0].message
