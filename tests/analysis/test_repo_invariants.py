"""The analyzer against the real tree: clean now, and loud when debt sneaks in.

The injection tests are the acceptance check for the CI gate: take a scratch
copy of a real module, insert one violation of each tentpole invariant, and
assert the pass catches it even after baseline filtering.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import Baseline, split_by_baseline
from repro.analysis.runner import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "analysis-baseline.json"


def _analyze_scratch(path: Path, tmp_path: Path):
    active, _ = analyze_paths([path], repo_root=tmp_path)
    new, _ = split_by_baseline(active, Baseline.load(BASELINE))
    return new


def _scratch_copy(tmp_path: Path, rel: str, extra: str) -> Path:
    """Copy ``src/repro/<rel>`` into a scratch tree and append ``extra``."""
    source = (SRC / rel).read_text(encoding="utf-8")
    target = tmp_path / "src" / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source + "\n\n" + extra, encoding="utf-8")
    return target


def test_src_tree_is_clean_against_committed_baseline():
    active, _ = analyze_paths([SRC], repo_root=REPO_ROOT)
    new, _ = split_by_baseline(active, Baseline.load(BASELINE))
    assert new == [], "new findings:\n" + "\n".join(f.render() for f in new)


def test_injected_upward_import_fails_the_gate(tmp_path):
    path = _scratch_copy(tmp_path, "db/schema.py", "import repro.net.protocol\n")
    new = _analyze_scratch(path, tmp_path)
    assert any(f.rule == "LAY001" for f in new)


def test_injected_unguarded_mutation_fails_the_gate(tmp_path):
    extra = (
        "class ScratchTorn:\n"
        '    _GUARDED_BY = {"total": "_lock"}\n'
        "\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n"
        "\n"
        "    def bump(self):\n"
        "        self.total += 1\n"
    )
    path = _scratch_copy(tmp_path, "net/pool.py", extra)
    new = _analyze_scratch(path, tmp_path)
    assert any(f.rule == "LOCK001" and "total" in f.message for f in new)


def test_injected_uncharged_heap_read_fails_the_gate(tmp_path):
    extra = (
        "from repro.db.heap import HeapFile\n"
        "\n"
        "\n"
        "def scratch_read(heap, rid):\n"
        "    return heap.read(rid)\n"
    )
    path = _scratch_copy(tmp_path, "serve/sync.py", extra)
    new = _analyze_scratch(path, tmp_path)
    rules = {f.rule for f in new}
    assert "COST001" in rules  # the raw import
    assert "COST002" in rules  # the uncharged read
