"""STAT001/STAT002 against the stats-naming fixtures."""

from __future__ import annotations

from repro.analysis.passes.statnames import StatsNamingPass


def test_clean_fixture_has_no_findings(run_pass):
    active, suppressed = run_pass(StatsNamingPass(), "stat_clean.py")
    assert active == []
    assert suppressed == []


def test_bad_fixture_lines_and_rules(run_pass):
    active, suppressed = run_pass(StatsNamingPass(), "stat_bad.py")
    assert suppressed == []
    assert [(f.rule, f.line) for f in active] == [
        ("STAT001", 7),  # registry.counter("serve.fixture.Reads-Total")
        ("STAT001", 11),  # "readCount" dict key
        ("STAT002", 12),  # "reads_count" -> _total
        ("STAT002", 13),  # "wait_ms" -> _seconds
        ("STAT002", 15),  # out["flush_secs"] subscript assignment -> _seconds
    ]


def test_messages_name_the_canonical_replacement(run_pass):
    active, _ = run_pass(StatsNamingPass(), "stat_bad.py")
    by_line = {f.line: f.message for f in active}
    assert "_total" in by_line[12]
    assert "_seconds" in by_line[13]
    assert "_seconds" in by_line[15]
