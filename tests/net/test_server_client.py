"""Socket end-to-end: the DB-API surface, errors, sessions, observability."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    ConnectionClosedError,
    NetworkError,
    ProtocolError,
    SQLExecutionError,
    SQLPlanningError,
    SQLSyntaxError,
)
from repro.net import SQLServer, connect
from repro.obs import render_text

from tests.net.conftest import TEST_TIMEOUT_S


@pytest.fixture
def client(server):
    with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as conn:
        yield conn


class TestDBAPISurface:
    def test_select_fetchall(self, client):
        rows = client.execute("SELECT * FROM items ORDER BY id LIMIT 3").fetchall()
        assert rows == [
            {"id": 1, "name": "item-1", "qty": 10},
            {"id": 2, "name": "item-2", "qty": 20},
            {"id": 3, "name": "item-3", "qty": 30},
        ]

    def test_parameters_and_scalar(self, client):
        assert client.execute("SELECT name FROM items WHERE id = ?", (7,)).scalar() == "item-7"

    def test_fetchone_fetchmany_iteration(self, client):
        cursor = client.execute("SELECT id FROM items ORDER BY id")
        assert cursor.fetchone() == {"id": 1}
        assert cursor.fetchmany(2) == [{"id": 2}, {"id": 3}]
        assert [row["id"] for row in cursor] == list(range(4, 21))
        assert cursor.fetchone() is None

    def test_description_and_rowcount(self, client):
        cursor = client.execute("SELECT id, name FROM items WHERE id <= 5 ORDER BY id")
        assert cursor.description == ["id", "name"]
        assert cursor.rowcount == 5

    def test_ddl_dml_round_trip(self, client):
        client.execute("CREATE TABLE scratch (k integer PRIMARY KEY, v text)")
        assert client.execute("INSERT INTO scratch (k, v) VALUES (1, 'a')").rowcount == 1
        assert client.execute("UPDATE scratch SET v = 'b' WHERE k = 1").rowcount == 1
        assert client.execute("SELECT v FROM scratch WHERE k = 1").scalar() == "b"
        assert client.execute("DELETE FROM scratch WHERE k = 1").rowcount == 1
        client.execute("DROP TABLE scratch")

    def test_executemany(self, client):
        client.execute("CREATE TABLE bulk (k integer PRIMARY KEY, v integer)")
        cursor = client.executemany(
            "INSERT INTO bulk (k, v) VALUES (?, ?)", [(i, i * i) for i in range(30)]
        )
        assert cursor.rowcount == 30
        assert client.execute("SELECT COUNT(*) FROM bulk").scalar() == 30
        client.execute("DROP TABLE bulk")

    def test_results_match_in_process(self, backend, client):
        for sql in (
            "SELECT * FROM items ORDER BY id",
            "SELECT COUNT(*) FROM items",
            "SELECT name FROM items WHERE qty > 150 ORDER BY id",
        ):
            assert client.execute(sql).fetchall() == backend.execute(sql).fetchall()

    def test_cursor_context_manager(self, client):
        with client.cursor() as cursor:
            assert cursor.execute("SELECT COUNT(*) FROM items").scalar() == 20

    def test_ping(self, client):
        assert client.ping() is True


class TestErrors:
    def test_syntax_error_crosses_with_diagnostics(self, client):
        with pytest.raises(SQLSyntaxError) as excinfo:
            client.execute("SELEC * FROM items")
        assert excinfo.value.position == 0
        assert excinfo.value.token == "SELEC"

    def test_planning_error_crosses_with_diagnostics(self, client):
        with pytest.raises(SQLPlanningError) as excinfo:
            client.execute("SELECT nonexistent FROM items")
        assert excinfo.value.token == "nonexistent"
        assert excinfo.value.position is not None

    def test_execution_error_crosses(self, client):
        with pytest.raises(SQLExecutionError):
            client.execute("SELECT * FROM no_such_table_anywhere")

    def test_executemany_error_crosses(self, client):
        with pytest.raises(SQLSyntaxError) as excinfo:
            client.executemany("INSRT INTO items VALUES (?)", [(1,)])
        assert excinfo.value.token == "INSRT"

    def test_connection_survives_errors(self, client):
        for _ in range(3):
            with pytest.raises(SQLSyntaxError):
                client.execute("NOT SQL AT ALL")
        assert client.execute("SELECT COUNT(*) FROM items").scalar() == 20
        assert client.usable

    def test_unknown_op_is_structured_error_not_poison(self, client):
        with pytest.raises(NetworkError):
            client._exchange({"op": "mystery"})
        assert client.usable  # a structured error response keeps framing intact

    def test_closed_client_raises_locally(self, server):
        conn = connect(server.host, server.port, timeout=TEST_TIMEOUT_S)
        conn.close()
        with pytest.raises(ConfigurationError):
            conn.execute("SELECT 1")

    def test_dial_refused_port(self):
        with pytest.raises(ConnectionClosedError):
            connect("127.0.0.1", 1, timeout=2.0)


class TestSessions:
    def test_read_your_writes_per_wire_connection(self, served_server):
        server, _, documents = served_server
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as client:
            doc = documents[50]
            label = "database" if doc.label == 1 else "other"
            client.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                (doc.entity_id, label),
            )
            # The same wire connection observes its own write immediately.
            row = client.execute(
                "SELECT class FROM labeled_papers WHERE id = ?", (doc.entity_id,)
            ).fetchone()
            assert row is not None

    def test_connections_have_independent_prepared_caches(self, server):
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as first:
            with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as second:
                assert first.server_connection != second.server_connection
                for client in (first, second):
                    for key in (3, 4, 5):
                        assert (
                            client.execute(
                                "SELECT qty FROM items WHERE id = ?", (key,)
                            ).scalar()
                            == key * 10
                        )


class TestObservability:
    def test_system_connections_roster(self, server, backend):
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as client:
            client.execute("SELECT COUNT(*) FROM items")
            rows = client.execute("SELECT * FROM system.connections").fetchall()
            assert len(rows) == 1
            row = rows[0]
            assert row["connection"] == client.server_connection
            assert row["statements_total"] >= 1
            assert row["state"] == "executing"  # it is executing this query
            assert row["lane"] == "point"  # system-table reads ride the fast lane
        # After disconnect the roster empties (in-process view, post-goodbye).
        deadline = 50
        while server.connection_count() and deadline:
            import time

            time.sleep(0.02)
            deadline -= 1
        assert backend.execute("SELECT * FROM system.connections").fetchall() == []

    def test_admission_and_server_metrics_in_registry(self, server, backend):
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as client:
            client.execute("SELECT * FROM items")
            client.execute("SELECT qty FROM items WHERE id = ?", (2,))
            names = {
                row["name"]: row["value"]
                for row in backend.execute("SELECT * FROM system.metrics").fetchall()
            }
        assert names["net.admission.point.admitted_total"] >= 1
        assert names["net.admission.bulk.admitted_total"] >= 1
        assert names["net.server.connections_total"] >= 1
        assert names["net.server.statements_total"] >= 2

    def test_render_text_exposition(self, server, backend):
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as client:
            client.execute("SELECT COUNT(*) FROM items")
            text = render_text(backend.database.obs.registry)
        # render_text flattens dots to Prometheus-style underscores.
        assert "net_admission_point_admitted_total" in text
        assert "net_server_connections_active" in text

    def test_close_unregisters_surfaces(self, backend):
        server = SQLServer(backend.engine).start()
        server.close()
        names = {
            row["name"]
            for row in backend.execute("SELECT * FROM system.metrics").fetchall()
        }
        assert not any(name.startswith("net.") for name in names)
        assert backend.execute("SELECT * FROM system.connections").fetchall() == []


class TestServerLifecycle:
    def test_capacity_refusal(self, backend):
        with SQLServer(backend.engine, max_connections=1) as server:
            with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as first:
                assert first.ping()
                with pytest.raises(NetworkError) as excinfo:
                    connect(server.host, server.port, timeout=TEST_TIMEOUT_S)
                assert "limit" in str(excinfo.value)
                assert server.stats()["refused_total"] == 1
            # The slot frees after disconnect; retry succeeds.
            deadline = 100
            while server.connection_count() and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as retry:
                assert retry.ping()

    def test_close_is_idempotent_and_engine_survives(self, backend):
        server = SQLServer(backend.engine).start()
        server.close()
        server.close()
        assert backend.execute("SELECT COUNT(*) FROM items").scalar() == 20

    def test_protocol_version_mismatch_detected(self, server, monkeypatch):
        import repro.net.client as client_module

        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 999)
        with pytest.raises(ProtocolError):
            client_module.connect(server.host, server.port, timeout=TEST_TIMEOUT_S)
