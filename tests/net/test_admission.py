"""Lane classification and the two-lane weighted admission controller."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.exceptions import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    ConfigurationError,
)
from repro.net.admission import (
    BULK_LANE,
    POINT_LANE,
    AdmissionController,
    lane_for,
)

from tests.net.conftest import VIEW_DDL, corpus, create_base_tables


class TestLaneClassification:
    @pytest.fixture(scope="class")
    def prepared(self):
        """One connection with plain tables and a served view to plan against."""
        documents = corpus(count=60)
        conn = repro.connect()
        create_base_tables(conn, documents)
        conn.execute(VIEW_DDL)
        conn.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        yield conn
        conn.close()

    def lane_of(self, prepared, sql: str) -> str:
        statement = prepared.prepare(sql)
        return lane_for(statement.statement, statement.plan)

    def test_primary_key_point_read_is_point(self, prepared):
        assert self.lane_of(prepared, "SELECT * FROM papers WHERE id = 3") == POINT_LANE

    def test_served_view_point_read_is_point(self, prepared):
        sql = "SELECT class FROM labeled_papers WHERE id = 3"
        assert self.lane_of(prepared, sql) == POINT_LANE

    def test_system_table_read_is_point(self, prepared):
        assert self.lane_of(prepared, "SELECT * FROM system.metrics") == POINT_LANE

    def test_full_scan_is_bulk(self, prepared):
        assert self.lane_of(prepared, "SELECT * FROM papers") == BULK_LANE

    def test_all_members_scan_is_bulk(self, prepared):
        sql = "SELECT id FROM labeled_papers WHERE class = 'database'"
        assert self.lane_of(prepared, sql) == BULK_LANE

    def test_dml_is_bulk(self, prepared):
        statement = prepared.prepare("INSERT INTO paper_area (label) VALUES ('x')")
        assert lane_for(statement.statement, statement.plan) == BULK_LANE

    def test_unplanned_statement_is_bulk(self):
        assert lane_for(None, None) == BULK_LANE


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(slots=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(point_weight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController().admit("express").__enter__()

    def test_uncontended_admit_is_immediate(self):
        controller = AdmissionController(slots=2)
        with controller.admit(POINT_LANE):
            with controller.admit(BULK_LANE):
                stats = controller.stats()
                assert stats["point.in_flight"] == 1
                assert stats["bulk.in_flight"] == 1
        stats = controller.stats()
        assert stats["point.in_flight"] == 0
        assert stats["bulk.in_flight"] == 0
        assert stats["point.admitted_total"] == 1
        assert stats["bulk.admitted_total"] == 1

    def test_slots_bound_concurrency(self):
        controller = AdmissionController(slots=2, queue_capacity=16)
        running = threading.Semaphore(0)
        finish = threading.Event()
        peak = []

        def worker():
            with controller.admit(POINT_LANE, timeout=10):
                running.release()
                finish.wait(timeout=10)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        assert running.acquire(timeout=5) and running.acquire(timeout=5)
        time.sleep(0.05)  # give a third worker the chance to (wrongly) run
        peak.append(controller.stats()["point.in_flight"])
        finish.set()
        for thread in threads:
            thread.join(timeout=10)
        assert peak[0] == 2
        assert controller.stats()["point.admitted_total"] == 5

    def test_full_lane_rejects_immediately(self):
        controller = AdmissionController(slots=1, queue_capacity=1)
        finish = threading.Event()
        started = threading.Event()

        def occupant():
            with controller.admit(BULK_LANE, timeout=10):
                started.set()
                finish.wait(timeout=10)

        thread = threading.Thread(target=occupant)
        thread.start()
        assert started.wait(timeout=5)

        # One waiter fills the queue...
        waiter_started = threading.Event()

        def waiter():
            waiter_started.set()
            with controller.admit(BULK_LANE, timeout=10):
                pass

        waiting = threading.Thread(target=waiter)
        waiting.start()
        assert waiter_started.wait(timeout=5)
        deadline = time.perf_counter() + 5
        while controller.stats()["bulk.depth"] < 1:
            assert time.perf_counter() < deadline
            time.sleep(0.01)

        # ...and the next submission is rejected, not queued.
        with pytest.raises(AdmissionRejectedError):
            with controller.admit(BULK_LANE, timeout=10):
                pass
        assert controller.stats()["bulk.rejected_total"] == 1
        finish.set()
        thread.join(timeout=10)
        waiting.join(timeout=10)

    def test_wait_timeout_raises_and_withdraws(self):
        controller = AdmissionController(slots=1, queue_capacity=8)
        finish = threading.Event()
        started = threading.Event()

        def occupant():
            with controller.admit(POINT_LANE, timeout=10):
                started.set()
                finish.wait(timeout=10)

        thread = threading.Thread(target=occupant)
        thread.start()
        assert started.wait(timeout=5)
        with pytest.raises(AdmissionTimeoutError):
            with controller.admit(POINT_LANE, timeout=0.05):
                pass
        stats = controller.stats()
        assert stats["point.timeouts_total"] == 1
        assert stats["point.depth"] == 0  # the timed-out ticket withdrew
        finish.set()
        thread.join(timeout=10)
        # The freed slot must not be granted to the withdrawn ticket.
        with controller.admit(POINT_LANE, timeout=5):
            pass

    def test_bulk_never_fills_every_slot(self):
        controller = AdmissionController(slots=3)
        assert controller.bulk_slot_cap == 2
        finish = threading.Event()
        running = threading.Semaphore(0)

        def bulk_worker():
            with controller.admit(BULK_LANE, timeout=10):
                running.release()
                finish.wait(timeout=10)

        threads = [threading.Thread(target=bulk_worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        assert running.acquire(timeout=5) and running.acquire(timeout=5)
        time.sleep(0.05)
        stats = controller.stats()
        assert stats["bulk.in_flight"] == 2  # the third bulk waits
        assert stats["bulk.depth"] == 1
        # The reserved slot admits a point read straight away.
        with controller.admit(POINT_LANE, timeout=5):
            pass
        finish.set()
        for thread in threads:
            thread.join(timeout=10)

    def test_weighted_grants_favor_point_lane(self):
        controller = AdmissionController(slots=1, point_weight=4, bulk_weight=1)
        order: list[str] = []
        order_lock = threading.Lock()
        gate = threading.Event()

        def worker(lane: str):
            gate.wait(timeout=10)
            with controller.admit(lane, timeout=30):
                with order_lock:
                    order.append(lane)
                time.sleep(0.002)

        threads = [threading.Thread(target=worker, args=(POINT_LANE,)) for _ in range(8)]
        threads += [threading.Thread(target=worker, args=(BULK_LANE,)) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # let everyone reach the gate before the grant storm
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert len(order) == 16
        # With 4:1 weights, the first 10 grants should be point-heavy: at
        # least 6 of the first 10 must be point admissions.
        assert order[:10].count(POINT_LANE) >= 6

    def test_stats_shape(self):
        stats = AdmissionController(slots=2, queue_capacity=7).stats()
        assert stats["slots"] == 2
        assert stats["queue_capacity"] == 7
        for lane in ("point", "bulk"):
            for key in (
                "depth",
                "in_flight",
                "admitted_total",
                "rejected_total",
                "timeouts_total",
                "wait_seconds_total",
                "max_wait_seconds",
            ):
                assert f"{lane}.{key}" in stats
