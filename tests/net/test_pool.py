"""ConnectionPool: bounded checkout, health-checked replacement, timeouts."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError, PoolExhaustedError
from repro.net import ConnectionPool, SQLServer

from tests.net.conftest import TEST_TIMEOUT_S


@pytest.fixture
def pool(server):
    with ConnectionPool(server.host, server.port, size=3, timeout=TEST_TIMEOUT_S) as pool:
        yield pool


class TestCheckout:
    def test_basic_checkout_and_reuse(self, pool):
        with pool.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 20
        first_dials = pool.stats()["dials_total"]
        with pool.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 20
        # The second checkout reused the idle member, no fresh dial.
        assert pool.stats()["dials_total"] == first_dials
        assert pool.stats()["checkouts_total"] == 2

    def test_dials_lazily_up_to_size(self, pool):
        first = pool.acquire()
        second = pool.acquire()
        third = pool.acquire()
        try:
            stats = pool.stats()
            assert stats["live"] == 3
            assert stats["dials_total"] == 3
        finally:
            for conn in (first, second, third):
                pool.release(conn)

    def test_exhaustion_times_out(self, pool):
        held = [pool.acquire() for _ in range(3)]
        try:
            with pytest.raises(PoolExhaustedError):
                pool.acquire(timeout=0.1)
        finally:
            for conn in held:
                pool.release(conn)

    def test_release_unblocks_waiter(self, pool):
        held = [pool.acquire() for _ in range(3)]
        got = []

        def waiter():
            conn = pool.acquire(timeout=TEST_TIMEOUT_S)
            got.append(conn)
            pool.release(conn)

        thread = threading.Thread(target=waiter)
        thread.start()
        pool.release(held.pop())
        thread.join(timeout=TEST_TIMEOUT_S)
        assert not thread.is_alive()
        assert len(got) == 1
        for conn in held:
            pool.release(conn)

    def test_size_validation(self, server):
        with pytest.raises(ConfigurationError):
            ConnectionPool(server.host, server.port, size=0)


class TestHealth:
    def test_poisoned_member_replaced_at_checkout(self, pool):
        with pool.connection() as conn:
            conn._poisoned = True  # simulate a timeout having poisoned it
        with pool.connection() as conn:
            assert conn.usable
            assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 20

    def test_dead_idle_member_replaced_by_health_check(self, pool):
        with pool.connection() as conn:
            first_name = conn.server_connection
        # Kill the idle member's socket behind the pool's back.
        idle = pool._idle[0]
        idle._sock.close()
        with pool.connection() as conn:
            assert conn.usable
            assert conn.server_connection != first_name
            assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 20
        assert pool.stats()["health_replacements_total"] == 1

    def test_pool_heals_across_server_restart(self, backend):
        server = SQLServer(backend.engine).start()
        pool = ConnectionPool(server.host, server.port, size=2, timeout=TEST_TIMEOUT_S)
        try:
            with pool.connection() as conn:
                assert conn.ping()
            host, port = server.host, server.port
            server.close()
            restarted = SQLServer(backend.engine, host=host, port=port).start()
            try:
                with pool.connection() as conn:
                    assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 20
            finally:
                restarted.close()
        finally:
            pool.close()

    def test_parallel_clients_each_get_a_connection(self, pool):
        results = []
        errors = []
        barrier = threading.Barrier(3)

        def worker(key: int):
            try:
                barrier.wait(timeout=TEST_TIMEOUT_S)
                with pool.connection() as conn:
                    results.append(
                        conn.execute("SELECT qty FROM items WHERE id = ?", (key,)).scalar()
                    )
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(k,)) for k in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=TEST_TIMEOUT_S)
        assert not errors
        assert sorted(results) == [10, 20, 30]


class TestLifecycle:
    def test_close_refuses_further_checkouts(self, server):
        pool = ConnectionPool(server.host, server.port, size=2, timeout=TEST_TIMEOUT_S)
        with pool.connection() as conn:
            assert conn.ping()
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.acquire()

    def test_checked_out_member_discarded_after_close(self, server):
        pool = ConnectionPool(server.host, server.port, size=2, timeout=TEST_TIMEOUT_S)
        conn = pool.acquire()
        pool.close()
        pool.release(conn)  # comes back to a closed pool: discarded, not idled
        assert conn.closed
        assert pool.stats()["idle"] == 0
