"""Shared fixtures for the wire-front-door tests.

Everything here talks over real loopback sockets; every socket operation
carries a timeout so a regression hangs a test, not the suite.
"""

from __future__ import annotations

import pytest

import repro
from repro.net import SQLServer
from repro.workloads.synth_text import SparseCorpusGenerator

#: Socket/request deadline for everything in this package.
TEST_TIMEOUT_S = 15.0

VIEW_DDL = """
    CREATE CLASSIFICATION VIEW labeled_papers KEY id
    ENTITIES FROM papers KEY id
    LABELS FROM paper_area LABEL label
    EXAMPLES FROM example_papers KEY id LABEL label
    FEATURE FUNCTION tf_bag_of_words USING SVM
"""


def corpus(count: int = 120, seed: int = 42):
    return SparseCorpusGenerator(
        vocabulary_size=300, nonzeros_per_document=10, positive_fraction=0.35, seed=seed
    ).generate_list(count)


def create_base_tables(conn, documents) -> None:
    conn.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    conn.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    conn.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    conn.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    conn.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )


def label_examples(conn, documents) -> None:
    conn.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [(doc.entity_id, "database" if doc.label == 1 else "other") for doc in documents],
    )


@pytest.fixture
def backend():
    """An in-process connection over plain base tables (no served view)."""
    conn = repro.connect()
    conn.execute("CREATE TABLE items (id integer PRIMARY KEY, name text, qty integer)")
    conn.executemany(
        "INSERT INTO items (id, name, qty) VALUES (?, ?, ?)",
        [(i, f"item-{i}", i * 10) for i in range(1, 21)],
    )
    yield conn
    conn.close()


@pytest.fixture
def server(backend):
    """A running SQLServer over the plain-tables backend."""
    with SQLServer(backend.engine, admission_timeout_s=TEST_TIMEOUT_S) as running:
        yield running


@pytest.fixture
def served_backend():
    """An in-process connection with a live served classification view."""
    documents = corpus()
    conn = repro.connect()
    create_base_tables(conn, documents)
    conn.execute(VIEW_DDL)
    conn.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
    label_examples(conn, documents[:40])
    yield conn, documents
    conn.close()


@pytest.fixture
def served_server(served_backend):
    """A running SQLServer fronting the served classification view."""
    conn, documents = served_backend
    with SQLServer(conn.engine, admission_timeout_s=TEST_TIMEOUT_S) as running:
        yield running, conn, documents
