"""Ungraceful client death: the server must reap, release, stay consistent.

Three deaths are simulated with raw sockets (no polite ``goodbye`` anywhere):

* mid-statement — the client sends a query and vanishes before reading the
  response;
* mid-transaction-of-writes — the client dies with queued writes against a
  served view still in the maintenance pipeline;
* mid-frame — the client dies after sending half a frame.

In every case the server-side connection must close (releasing its view
sessions), the roster row must disappear, serving must continue for other
clients, and the view must stay consistent.
"""

from __future__ import annotations

import socket
import struct
import time

from repro.net import connect
from repro.net.protocol import read_frame, write_frame

from tests.net.conftest import TEST_TIMEOUT_S


def raw_dial(server) -> socket.socket:
    """Dial and swallow the hello frame; returns the bare socket."""
    sock = socket.create_connection((server.host, server.port), timeout=TEST_TIMEOUT_S)
    sock.settimeout(TEST_TIMEOUT_S)
    hello = read_frame(sock)
    assert hello["protocol"] == 1
    return sock


def wait_for_roster(server, count: int, timeout: float = TEST_TIMEOUT_S) -> None:
    deadline = time.perf_counter() + timeout
    while server.connection_count() != count:
        assert time.perf_counter() < deadline, (
            f"roster stuck at {server.connection_count()}, wanted {count}"
        )
        time.sleep(0.02)


class TestMidStatementDeath:
    def test_server_reaps_and_keeps_serving(self, server, backend):
        victim = raw_dial(server)
        wait_for_roster(server, 1)
        # Send a statement, then die without reading the response.
        write_frame(victim, {"op": "query", "sql": "SELECT * FROM items"})
        victim.close()
        wait_for_roster(server, 0)
        # The roster row is gone and the engine still answers other clients.
        assert backend.execute("SELECT * FROM system.connections").fetchall() == []
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as other:
            assert other.execute("SELECT COUNT(*) FROM items").scalar() == 20


class TestMidFrameDeath:
    def test_truncated_frame_reaps(self, server):
        victim = raw_dial(server)
        wait_for_roster(server, 1)
        before = server.stats()["reaped_total"]
        # A length prefix promising 500 bytes, then death after 5.
        victim.sendall(struct.pack(">I", 500) + b"x" * 5)
        victim.close()
        wait_for_roster(server, 0)
        assert server.stats()["reaped_total"] == before + 1

    def test_abrupt_close_without_goodbye_is_not_counted_as_reap(self, server):
        victim = raw_dial(server)
        wait_for_roster(server, 1)
        before = server.stats()["reaped_total"]
        victim.close()  # clean EOF between frames: torn down, not "reaped"
        wait_for_roster(server, 0)
        assert server.stats()["reaped_total"] == before


class TestMidWritesDeath:
    def test_sessions_released_and_view_consistent(self, served_server):
        server, backend, documents = served_server

        victim = raw_dial(server)
        wait_for_roster(server, 1)
        # Grab the server-side half so we can verify it is torn down.
        handler = next(iter(server._handlers.values()))

        # Queue writes through the dying connection: label fresh examples.
        fresh = documents[60:70]
        for doc in fresh:
            label = "database" if doc.label == 1 else "other"
            write_frame(
                victim,
                {
                    "op": "query",
                    "sql": "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                    "params": [doc.entity_id, label],
                },
            )
            response = read_frame(victim)
            assert response["ok"], response
        # One more write whose response the victim never reads, then death.
        doc = documents[70]
        write_frame(
            victim,
            {
                "op": "query",
                "sql": "INSERT INTO example_papers (id, label) VALUES (?, ?)",
                "params": [doc.entity_id, "database" if doc.label == 1 else "other"],
            },
        )
        victim.close()
        wait_for_roster(server, 0)

        # The dead wire connection's server-side half is closed, which clears
        # its SessionRegistry — the read-your-writes sessions are released.
        deadline = time.perf_counter() + TEST_TIMEOUT_S
        while not handler.connection.closed:
            assert time.perf_counter() < deadline, "server-side connection leaked"
            time.sleep(0.02)

        # Its writes were accepted before death and flow through maintenance:
        # the base table holds all eleven labels...
        count = backend.execute("SELECT COUNT(*) FROM example_papers").scalar()
        assert count == 40 + len(fresh) + 1
        # ...and the view still answers consistently for a healthy client.
        with connect(server.host, server.port, timeout=TEST_TIMEOUT_S) as client:
            total = client.execute("SELECT COUNT(*) FROM labeled_papers").scalar()
            members = client.execute(
                "SELECT id FROM labeled_papers WHERE class = 'database'"
            ).fetchall()
            negatives = client.execute(
                "SELECT id FROM labeled_papers WHERE class = 'not_database'"
            ).fetchall()
            assert len(members) + len(negatives) == total
            point = client.execute(
                "SELECT class FROM labeled_papers WHERE id = ?", (fresh[0].entity_id,)
            ).scalar()
            assert point in ("database", "not_database")
