"""Frame codec and structured-error codec, over real socketpairs."""

from __future__ import annotations

import math
import socket
import struct
import threading

import pytest

from repro.exceptions import (
    HazyError,
    NetworkError,
    NetworkTimeoutError,
    ProtocolError,
    SQLPlanningError,
    SQLSyntaxError,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    decode_error,
    encode_error,
    read_frame,
    write_frame,
)


def pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def roundtrip(message: dict) -> dict:
    left, right = pair()
    try:
        write_frame(left, message)
        return read_frame(right)
    finally:
        left.close()
        right.close()


class TestFraming:
    def test_simple_round_trip(self):
        message = {"op": "query", "sql": "SELECT 1", "params": [1, "two", None, True]}
        assert roundtrip(message) == message

    def test_floats_round_trip_bit_identical(self):
        values = [0.1, 1 / 3, 2.5e-17, 1e300, -0.0, math.pi]
        back = roundtrip({"values": values})["values"]
        assert [v.hex() for v in back] == [v.hex() for v in values]

    def test_non_finite_floats_round_trip(self):
        back = roundtrip({"values": [math.inf, -math.inf, math.nan]})["values"]
        assert back[0] == math.inf
        assert back[1] == -math.inf
        assert math.isnan(back[2])

    def test_unicode_round_trip(self):
        message = {"sql": "SELECT 'héllo — ünïcode 🎓'"}
        assert roundtrip(message) == message

    def test_many_frames_in_sequence(self):
        left, right = pair()
        try:
            for index in range(50):
                write_frame(left, {"index": index})
            for index in range(50):
                assert read_frame(right) == {"index": index}
        finally:
            left.close()
            right.close()

    def test_oversized_outgoing_frame_rejected(self):
        left, right = pair()
        try:
            with pytest.raises(ProtocolError):
                write_frame(left, {"blob": "x" * (MAX_FRAME_BYTES + 1)})
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_rejected_before_read(self):
        left, right = pair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_is_protocol_error(self):
        left, right = pair()
        try:
            left.sendall(struct.pack(">I", 100) + b"only a little")
            left.close()
            with pytest.raises(ProtocolError):
                read_frame(right, eof_ok=True)  # EOF *mid-frame* is never ok
        finally:
            right.close()

    def test_clean_eof_between_frames(self):
        left, right = pair()
        try:
            left.close()
            assert read_frame(right, eof_ok=True) is None
            with pytest.raises(NetworkError):
                read_frame(right, eof_ok=False)
        finally:
            right.close()

    def test_garbage_payload_is_protocol_error(self):
        left, right = pair()
        try:
            payload = b"\xff\xfe not json"
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_is_protocol_error(self):
        left, right = pair()
        try:
            payload = b"[1,2,3]"
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_read_timeout_raises_network_timeout(self):
        left, right = pair()
        try:
            right.settimeout(0.05)
            with pytest.raises(NetworkTimeoutError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_incremental_row_encoding_is_byte_identical(self):
        import json

        from repro.net.protocol import _INCREMENTAL_ROWS, _encode_payload

        rows = [
            {"id": i, "margin": i * 0.1 - 1 / 3, "label": f"c{i % 3}", "none": None}
            for i in range(_INCREMENTAL_ROWS + 10)
        ]
        # ``rows`` last, matching how the server orders its query responses.
        message = {"ok": True, "rowcount": len(rows), "rows": rows}
        incremental = _encode_payload(message)
        monolithic = json.dumps(message, separators=(",", ":")).encode("utf-8")
        assert incremental == monolithic

    def test_incremental_encoding_rows_only_message(self):
        import json

        from repro.net.protocol import _INCREMENTAL_ROWS, _encode_payload

        message = {"rows": [{"id": i} for i in range(_INCREMENTAL_ROWS + 1)]}
        assert json.loads(_encode_payload(message)) == message

    def test_large_frame_crosses_in_chunks(self):
        # Big enough to need many recv() calls on a real socket buffer.
        message = {"rows": [{"id": i, "text": "t" * 200} for i in range(5000)]}
        left, right = pair()
        received: list[dict] = []

        def reader():
            received.append(read_frame(right))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            write_frame(left, message)
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert received[0] == message
        finally:
            left.close()
            right.close()


class TestErrorCodec:
    def test_syntax_error_round_trip_with_diagnostics(self):
        original = SQLSyntaxError("unexpected token", position=17, token="FORM")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is SQLSyntaxError
        assert str(rebuilt) == "unexpected token"
        assert rebuilt.position == 17
        assert rebuilt.token == "FORM"

    def test_planning_error_round_trip_with_diagnostics(self):
        original = SQLPlanningError("unknown column 'nme'", position=7, token="nme")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is SQLPlanningError
        assert rebuilt.position == 7
        assert rebuilt.token == "nme"

    def test_error_without_diagnostics(self):
        payload = encode_error(HazyError("plain failure"))
        assert "position" not in payload
        rebuilt = decode_error(payload)
        assert type(rebuilt) is HazyError
        assert str(rebuilt) == "plain failure"

    def test_unknown_type_degrades_to_network_error(self):
        rebuilt = decode_error({"type": "TotallyMadeUpError", "message": "boom"})
        assert type(rebuilt) is NetworkError
        assert "TotallyMadeUpError" in str(rebuilt)
        assert "boom" in str(rebuilt)

    def test_non_hazy_type_name_degrades_to_network_error(self):
        # A real attribute of the exceptions module that is not a HazyError
        # subclass must not be instantiated.
        rebuilt = decode_error({"type": "annotations", "message": "x"})
        assert type(rebuilt) is NetworkError

    def test_codec_survives_a_socket_hop(self):
        original = SQLSyntaxError("bad", position=3, token="SELEC")
        frame = {"ok": False, "error": encode_error(original)}
        back = roundtrip(frame)
        rebuilt = decode_error(back["error"])
        assert type(rebuilt) is SQLSyntaxError
        assert (rebuilt.position, rebuilt.token) == (3, "SELEC")
