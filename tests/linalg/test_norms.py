"""Unit tests for p-norms and Hölder conjugates."""

from __future__ import annotations

import math

import pytest

from repro.linalg import SparseVector, holder_conjugate, p_norm
from repro.linalg.norms import HOLDER_PAIRS


class TestHolderConjugate:
    def test_conjugate_of_one_is_infinity(self):
        assert holder_conjugate(1) == math.inf

    def test_conjugate_of_infinity_is_one(self):
        assert holder_conjugate(math.inf) == 1.0

    def test_two_is_self_conjugate(self):
        assert holder_conjugate(2) == pytest.approx(2.0)

    def test_general_conjugate_identity(self):
        for p in (1.5, 3.0, 4.0, 10.0):
            q = holder_conjugate(p)
            assert 1 / p + 1 / q == pytest.approx(1.0)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            holder_conjugate(0.5)

    def test_paper_pairs_are_conjugate(self):
        for p, q in HOLDER_PAIRS:
            if p == math.inf:
                assert q == 1.0
            elif q == math.inf:
                assert p == 1.0
            else:
                assert 1 / p + 1 / q == pytest.approx(1.0)


class TestPNorm:
    def test_sparse_vector_dispatch(self):
        assert p_norm(SparseVector({0: 3.0, 1: 4.0}), 2) == pytest.approx(5.0)

    def test_dense_iterable(self):
        assert p_norm([3.0, -4.0], 1) == pytest.approx(7.0)
        assert p_norm([3.0, -4.0], 2) == pytest.approx(5.0)
        assert p_norm([3.0, -4.0], math.inf) == pytest.approx(4.0)

    def test_empty_iterable(self):
        assert p_norm([], 2) == 0.0

    def test_general_p(self):
        assert p_norm([1.0, 1.0], 3) == pytest.approx(2 ** (1 / 3))

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            p_norm([1.0], -1)

    def test_holder_inequality_holds_on_examples(self):
        """|x . y| <= ||x||_p * ||y||_q for the pairs the paper uses."""
        x = SparseVector({0: 0.5, 3: -1.5, 7: 2.0})
        y = SparseVector({0: 1.0, 3: 0.25, 9: 4.0})
        for p, q in ((math.inf, 1.0), (2.0, 2.0), (1.0, math.inf)):
            assert abs(x.dot(y)) <= x.norm(p) * y.norm(q) + 1e-12
