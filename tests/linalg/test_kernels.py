"""Unit tests for the batched NumPy kernels (margin scoring + comparisons)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.linalg import SparseVector, batch_dot, batch_eps, batch_margins, compare


class TestCompare:
    def test_all_operators_match_scalar_semantics(self):
        values = np.array([1.0, 2.0, 3.0])
        cases = {
            "=": [False, True, False],
            "!=": [True, False, True],
            "<": [True, False, False],
            "<=": [True, True, False],
            ">": [False, False, True],
            ">=": [False, True, True],
        }
        for operator, expected in cases.items():
            assert compare(values, operator, 2.0).tolist() == expected

    def test_nan_never_compares_except_not_equal(self):
        values = np.array([1.0, float("nan")])
        for operator in ("=", "<", "<=", ">", ">="):
            assert not compare(values, operator, float("nan")).any()
        assert compare(values, "!=", 1.0).tolist() == [False, True]
        # A NaN element compares False everywhere (and != everywhere).
        assert compare(values, ">=", 0.0).tolist() == [True, False]
        assert compare(values, "!=", 0.0).tolist() == [True, True]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unsupported comparison"):
            compare(np.array([1.0]), "like", 1.0)


class TestBatchDot:
    def _scalar_margins(self, vectors, weights, bias):
        return [vector.dot(weights) - bias for vector in vectors]

    def test_matches_scalar_dot(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(size=40)
        vectors = [
            SparseVector({int(j): float(rng.normal()) for j in rng.choice(40, size=5)})
            for _ in range(17)
        ]
        vectors.append(SparseVector({}))  # empty vector scores exactly zero
        got = batch_margins(vectors, weights, bias=0.25)
        want = self._scalar_margins(vectors, weights, 0.25)
        assert np.allclose(got, want)
        assert got[-1] == pytest.approx(-0.25)

    def test_out_of_dimension_indices_contribute_zero(self):
        weights = np.array([1.0, 2.0])
        vectors = [SparseVector({0: 1.0, 5: 100.0}), SparseVector({9: 4.0})]
        assert batch_dot(vectors, weights).tolist() == [1.0, 0.0]

    def test_empty_inputs(self):
        assert batch_dot([], np.array([1.0])).shape == (0,)
        assert batch_dot([SparseVector({0: 2.0})], np.array([])).tolist() == [0.0]

    def test_eps_alias(self):
        assert batch_eps is batch_margins

    def test_interleaved_empty_segments(self):
        weights = np.ones(4)
        vectors = [
            SparseVector({}),
            SparseVector({0: 1.0, 1: 1.0}),
            SparseVector({}),
            SparseVector({2: 3.0}),
            SparseVector({}),
        ]
        assert batch_dot(vectors, weights).tolist() == [0.0, 2.0, 0.0, 3.0, 0.0]

    def test_nan_propagates_like_scalar(self):
        weights = np.array([float("nan"), 1.0])
        vector = SparseVector({0: 1.0})
        assert math.isnan(batch_dot([vector], weights)[0])
