"""Unit tests for SparseVector arithmetic."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.linalg import SparseVector, dot, to_dense, to_sparse
from repro.linalg.vectors import axpy


class TestConstruction:
    def test_empty_vector_has_no_entries(self):
        assert SparseVector().nnz() == 0
        assert len(SparseVector()) == 0

    def test_zero_values_are_dropped(self):
        vector = SparseVector({0: 0.0, 1: 2.0, 2: 0.0})
        assert vector.nnz() == 1
        assert vector[1] == 2.0

    def test_from_dense_drops_zeros(self):
        vector = SparseVector.from_dense([0.0, 1.0, 0.0, 3.0])
        assert vector.to_dict() == {1: 1.0, 3: 3.0}

    def test_from_pairs(self):
        vector = SparseVector([(2, 5.0), (7, -1.0)])
        assert vector[2] == 5.0
        assert vector[7] == -1.0

    def test_indices_are_coerced_to_int(self):
        vector = SparseVector({np.int64(3): 1.5})
        assert vector[3] == 1.5

    def test_zeros_constructor(self):
        assert SparseVector.zeros().nnz() == 0


class TestAccess:
    def test_missing_index_reads_as_zero(self):
        assert SparseVector({1: 2.0})[99] == 0.0

    def test_setitem_and_delete_via_zero(self):
        vector = SparseVector()
        vector[4] = 2.5
        assert vector[4] == 2.5
        vector[4] = 0.0
        assert 4 not in vector
        assert vector.nnz() == 0

    def test_contains(self):
        vector = SparseVector({3: 1.0})
        assert 3 in vector
        assert 4 not in vector

    def test_iteration_yields_indices(self):
        vector = SparseVector({1: 1.0, 5: 2.0})
        assert sorted(vector) == [1, 5]

    def test_copy_is_independent(self):
        vector = SparseVector({1: 1.0})
        clone = vector.copy()
        clone[1] = 9.0
        assert vector[1] == 1.0

    def test_max_index(self):
        assert SparseVector({3: 1.0, 10: 2.0}).max_index() == 10
        assert SparseVector().max_index() == -1

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SparseVector())


class TestArithmetic:
    def test_dot_sparse_sparse(self):
        left = SparseVector({0: 1.0, 2: 3.0})
        right = SparseVector({2: 2.0, 5: 7.0})
        assert left.dot(right) == pytest.approx(6.0)

    def test_dot_is_symmetric(self):
        left = SparseVector({0: 1.5, 3: -2.0})
        right = SparseVector({0: 2.0, 3: 4.0, 9: 1.0})
        assert left.dot(right) == pytest.approx(right.dot(left))

    def test_dot_with_dense_array(self):
        vector = SparseVector({0: 1.0, 2: 2.0})
        dense = np.array([3.0, 0.0, 4.0])
        assert vector.dot(dense) == pytest.approx(11.0)

    def test_dot_with_dense_ignores_out_of_range(self):
        vector = SparseVector({5: 1.0})
        dense = np.array([1.0, 2.0])
        assert vector.dot(dense) == 0.0

    def test_scale(self):
        vector = SparseVector({1: 2.0}).scale(3.0)
        assert vector[1] == pytest.approx(6.0)

    def test_scale_by_zero_empties(self):
        assert SparseVector({1: 2.0}).scale(0.0).nnz() == 0

    def test_scale_inplace(self):
        vector = SparseVector({1: 2.0})
        vector.scale_inplace(0.5)
        assert vector[1] == pytest.approx(1.0)

    def test_add_and_subtract(self):
        left = SparseVector({0: 1.0, 1: 1.0})
        right = SparseVector({1: 2.0, 2: 3.0})
        total = left.add(right)
        assert total.to_dict() == {0: 1.0, 1: 3.0, 2: 3.0}
        difference = total.subtract(right)
        assert difference.to_dict() == pytest.approx({0: 1.0, 1: 1.0})

    def test_add_inplace_with_scale(self):
        vector = SparseVector({0: 1.0})
        vector.add_inplace(SparseVector({0: 1.0, 1: 2.0}), scale=2.0)
        assert vector.to_dict() == {0: 3.0, 1: 4.0}

    def test_add_inplace_cancellation_removes_entry(self):
        vector = SparseVector({0: 1.0})
        vector.add_inplace(SparseVector({0: 1.0}), scale=-1.0)
        assert vector.nnz() == 0

    def test_axpy_returns_accumulator(self):
        accumulator = SparseVector({0: 1.0})
        result = axpy(accumulator, SparseVector({1: 1.0}), 2.0)
        assert result is accumulator
        assert accumulator[1] == 2.0


class TestNorms:
    def test_l1_norm(self):
        assert SparseVector({0: 3.0, 1: -4.0}).norm(1) == pytest.approx(7.0)

    def test_l2_norm(self):
        assert SparseVector({0: 3.0, 1: 4.0}).norm(2) == pytest.approx(5.0)

    def test_inf_norm(self):
        assert SparseVector({0: 3.0, 1: -4.0}).norm(math.inf) == pytest.approx(4.0)

    def test_general_p_norm(self):
        vector = SparseVector({0: 1.0, 1: 1.0})
        assert vector.norm(3) == pytest.approx(2 ** (1 / 3))

    def test_zero_vector_norm(self):
        assert SparseVector().norm(2) == 0.0

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            SparseVector({0: 1.0}).norm(0)

    def test_normalized_l1(self):
        vector = SparseVector({0: 2.0, 1: 2.0}).normalized(p=1.0)
        assert vector.norm(1) == pytest.approx(1.0)

    def test_normalized_zero_vector_is_unchanged(self):
        assert SparseVector().normalized().nnz() == 0


class TestConversion:
    def test_to_dense_dimension(self):
        dense = SparseVector({1: 2.0}).to_dense(4)
        assert dense.tolist() == [0.0, 2.0, 0.0, 0.0]

    def test_to_dense_infers_dimension(self):
        dense = SparseVector({2: 1.0}).to_dense()
        assert dense.shape == (3,)

    def test_to_sparse_from_mapping_and_array(self):
        assert to_sparse({1: 2.0})[1] == 2.0
        assert to_sparse(np.array([0.0, 3.0]))[1] == 3.0

    def test_to_dense_helper_pads_and_truncates(self):
        assert to_dense(np.array([1.0, 2.0, 3.0]), 2).tolist() == [1.0, 2.0]
        assert to_dense(np.array([1.0]), 3).tolist() == [1.0, 0.0, 0.0]

    def test_module_level_dot(self):
        assert dot(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == pytest.approx(11.0)
        assert dot(SparseVector({0: 1.0}), np.array([5.0])) == pytest.approx(5.0)

    def test_equality(self):
        assert SparseVector({1: 2.0}) == SparseVector({1: 2.0})
        assert SparseVector({1: 2.0}) != SparseVector({1: 3.0})

    def test_repr_mentions_nnz(self):
        assert "nnz=1" in repr(SparseVector({1: 2.0}))

    def test_approx_size_grows_with_entries(self):
        small = SparseVector({1: 1.0}).approx_size_bytes()
        large = SparseVector({i: 1.0 for i in range(10)}).approx_size_bytes()
        assert large > small
