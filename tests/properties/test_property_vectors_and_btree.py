"""Property-based tests for the sparse-vector algebra and the B+-tree."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BPlusTree
from repro.linalg import SparseVector, holder_conjugate

# Sparse vectors as dictionaries with bounded indices and finite float values.
sparse_vectors = st.dictionaries(
    keys=st.integers(min_value=0, max_value=60),
    values=st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    max_size=15,
).map(SparseVector)

holder_ps = st.sampled_from([1.0, 1.5, 2.0, 3.0, math.inf])


class TestVectorAlgebraProperties:
    @given(sparse_vectors, sparse_vectors)
    def test_dot_product_symmetry(self, x, y):
        # Summation order differs between the two call directions, so agreement
        # is up to floating-point rounding, not bit-exact.
        left, right = x.dot(y), y.dot(x)
        assert abs(left - right) <= 1e-9 * (1.0 + abs(left))

    @given(sparse_vectors, sparse_vectors, sparse_vectors)
    def test_dot_product_distributes_over_addition(self, x, y, z):
        left = x.add(y).dot(z)
        right = x.dot(z) + y.dot(z)
        assert left == left or True  # guard against NaN (excluded by strategy)
        assert abs(left - right) <= 1e-6 * (1 + abs(left) + abs(right))

    @given(sparse_vectors, st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_scaling_scales_norms(self, x, factor):
        scaled = x.scale(factor)
        assert scaled.norm(2) <= abs(factor) * x.norm(2) + 1e-9
        assert scaled.norm(2) >= abs(factor) * x.norm(2) - 1e-9

    @given(sparse_vectors, sparse_vectors)
    def test_triangle_inequality(self, x, y):
        assert x.add(y).norm(2) <= x.norm(2) + y.norm(2) + 1e-9

    @given(sparse_vectors, sparse_vectors, holder_ps)
    def test_holder_inequality(self, x, y, p):
        """|<x, y>| <= ||x||_p ||y||_q — the inequality behind Lemma 3.1."""
        q = holder_conjugate(p)
        assert abs(x.dot(y)) <= x.norm(p) * y.norm(q) + 1e-6

    @given(sparse_vectors)
    def test_normalization_produces_unit_norm(self, x):
        for p in (1.0, 2.0):
            normalized = x.normalized(p)
            if x.nnz() > 0 and x.norm(p) > 0:
                assert abs(normalized.norm(p) - 1.0) <= 1e-9

    @given(sparse_vectors, sparse_vectors)
    def test_add_then_subtract_roundtrips(self, x, y):
        roundtrip = x.add(y).subtract(y)
        for index in set(list(x.indices()) + list(y.indices())):
            assert abs(roundtrip[index] - x[index]) <= 1e-6

    @given(sparse_vectors)
    def test_dense_roundtrip_preserves_values(self, x):
        dimension = x.max_index() + 1 if x.nnz() else 1
        dense = x.to_dense(dimension)
        rebuilt = SparseVector.from_dense(dense.tolist())
        assert all(abs(rebuilt[i] - x[i]) <= 1e-12 for i in x.indices())


key_lists = st.lists(
    st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=150,
)


class TestBPlusTreeProperties:
    @given(key_lists, st.integers(min_value=3, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_insert_preserves_invariants_and_order(self, keys, order):
        tree = BPlusTree(order=order)
        for position, key in enumerate(keys):
            tree.insert(key, position)
        tree.check_invariants()
        assert len(tree) == len(keys)
        scanned = [key for key, _ in tree.items()]
        assert scanned == sorted(keys)

    @given(key_lists)
    @settings(max_examples=60, deadline=None)
    def test_range_scan_equals_sorted_filter(self, keys):
        tree = BPlusTree(order=6)
        for position, key in enumerate(keys):
            tree.insert(key, position)
        if not keys:
            assert list(tree.range_scan(-1.0, 1.0)) == []
            return
        low, high = min(keys), max(keys)
        midpoint = (low + high) / 2
        expected = sorted(k for k in keys if low <= k <= midpoint)
        actual = [key for key, _ in tree.range_scan(low, midpoint)]
        assert actual == expected

    @given(key_lists)
    @settings(max_examples=40, deadline=None)
    def test_search_finds_every_inserted_payload(self, keys):
        tree = BPlusTree(order=5)
        for position, key in enumerate(keys):
            tree.insert(key, position)
        for position, key in enumerate(keys):
            assert position in tree.search(key)

    @given(key_lists)
    @settings(max_examples=40, deadline=None)
    def test_delete_removes_exactly_one_payload(self, keys):
        tree = BPlusTree(order=5)
        for position, key in enumerate(keys):
            tree.insert(key, position)
        for position, key in enumerate(keys):
            assert tree.delete(key, position)
        assert len(tree) == 0
        assert list(tree.items()) == []
