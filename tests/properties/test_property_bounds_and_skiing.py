"""Property-based tests for the paper's two core guarantees.

1. Lemma 3.1 soundness: an entity whose stored eps lies outside the cumulative
   low/high-water band never changes label relative to the current model.
2. Lemma 3.2 / Theorem 3.3: the Skiing strategy's cost is within (1 + alpha)
   times the offline optimum on monotone cost traces.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import WaterBandTracker
from repro.core.skiing import OfflineOptimalScheduler, simulate_skiing_on_trace
from repro.learn.model import LinearModel
from repro.linalg import SparseVector

DIMENSION = 12

feature_vectors = st.dictionaries(
    keys=st.integers(min_value=0, max_value=DIMENSION - 1),
    values=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
).map(SparseVector)

model_updates = st.lists(
    st.tuples(
        st.dictionaries(
            keys=st.integers(min_value=0, max_value=DIMENSION - 1),
            values=st.floats(min_value=-0.5, max_value=0.5, allow_nan=False, allow_infinity=False),
            max_size=4,
        ),
        st.floats(min_value=-0.3, max_value=0.3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=8,
)


class TestWaterBandSoundness:
    @given(
        st.lists(feature_vectors, min_size=1, max_size=25),
        feature_vectors,
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        model_updates,
        st.sampled_from([math.inf, 2.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_entities_outside_band_never_flip(
        self, entities, initial_weights, initial_bias, updates, holder_p
    ):
        q = 1.0 if holder_p == math.inf else 2.0
        stored = LinearModel(weights=initial_weights, bias=initial_bias, version=0)
        max_norm = max(vector.norm(q) for vector in entities)
        tracker = WaterBandTracker(holder_p, max_norm)
        tracker.reset(stored)
        stored_eps = [stored.margin(vector) for vector in entities]

        current = stored.copy()
        for step, (weight_change, bias_change) in enumerate(updates, start=1):
            current = current.copy()
            current.weights.add_inplace(SparseVector(weight_change))
            current.bias += bias_change
            current.version = step
            band = tracker.advance(current)
            for eps, vector in zip(stored_eps, entities):
                if band.certain_positive(eps):
                    assert current.predict(vector) == 1
                elif band.certain_negative(eps):
                    assert current.predict(vector) == -1

    @given(model_updates)
    @settings(max_examples=60, deadline=None)
    def test_band_grows_monotonically(self, updates):
        tracker = WaterBandTracker(math.inf, 1.0)
        tracker.reset(LinearModel())
        current = LinearModel()
        previous_band = tracker.band()
        for step, (weight_change, bias_change) in enumerate(updates, start=1):
            current = current.copy()
            current.weights.add_inplace(SparseVector(weight_change))
            current.bias += bias_change
            current.version = step
            band = tracker.advance(current)
            assert band.low <= previous_band.low
            assert band.high >= previous_band.high
            previous_band = band


cost_traces = st.lists(
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=25,
)


class TestSkiingCompetitiveness:
    @given(cost_traces, st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_ratio_within_lemma_bound_on_monotone_traces(self, increments, reorg_cost):
        """Costs accumulate with rounds-since-reorganization (monotone, as in Hazy).

        Lemma 3.2 assumes every per-round cost is at most ``sigma * S`` (the
        scan is cheaper than the reorganization); the bound is then
        ``(1 + alpha + sigma) * OPT`` plus a boundary term for the trailing
        interval of a finite trace, which can hold up to ``(alpha + sigma) * S``
        of waste that the optimum never has to pay for.
        """
        sigma = 0.25
        rounds = len(increments)
        prefix = [0.0]
        for increment in increments:
            prefix.append(prefix[-1] + increment * sigma * reorg_cost / 2.0)

        def cost(s: int, i: int) -> float:
            # Waste accumulated since the reorganization at s, capped at sigma*S.
            return min(prefix[i] - prefix[s], sigma * reorg_cost)

        skiing_cost, _ = simulate_skiing_on_trace(cost, rounds, reorg_cost, alpha=1.0)
        optimal_cost, _ = OfflineOptimalScheduler(reorg_cost).solve(cost, rounds)
        bound = (1.0 + 1.0 + sigma) * optimal_cost + (1.0 + sigma) * reorg_cost
        assert skiing_cost <= bound + 1e-9

    @given(st.floats(min_value=0.01, max_value=1.0), st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_constant_cost_traces(self, per_round, reorg_cost):
        rounds = 30

        def cost(s: int, i: int) -> float:
            return per_round

        skiing_cost, _ = simulate_skiing_on_trace(cost, rounds, reorg_cost, alpha=1.0)
        optimal_cost, _ = OfflineOptimalScheduler(reorg_cost).solve(cost, rounds)
        # With constant (non-improving) costs the optimum never reorganizes.
        assert optimal_cost <= rounds * per_round + 1e-9
        assert skiing_cost <= 2.0 * optimal_cost + reorg_cost + 1e-9
