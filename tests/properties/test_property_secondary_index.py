"""Property-based invariants for secondary B+-tree index maintenance.

After *any* interleaving of INSERT/UPDATE/DELETE — with CREATE INDEX and
DROP INDEX landing mid-sequence — every live secondary index must agree
exactly with a full table scan: each (value, row) the scan sees has exactly
one index entry (no missing entries), and each index entry resolves to a live
heap row carrying that value (no ghosts).  NULL column values must never be
indexed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.costmodel import CostModel
from repro.db.database import Database

#: One random mutation: (kind, key-ish int, value-ish int).
operations = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "update", "delete", "create_index", "drop_index"]
        ),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=-5, max_value=5),
    ),
    min_size=1,
    max_size=60,
)


def _index_entries(index) -> list[tuple[object, object]]:
    """Every (key, rid) pair currently in the tree."""
    return list(index.tree.items())


def check_index_agrees_with_scan(table) -> None:
    """The no-ghost / no-missing-entry invariant for every live index."""
    scan = {rid: dict(row) for rid, row in table.heap.scan()}
    for index in table.secondary_indexes.values():
        entries = _index_entries(index)
        # No ghosts: every entry points at a live row still carrying the key.
        for key, rid in entries:
            assert rid in scan, f"{index.name}: ghost entry {key!r} -> {rid}"
            assert scan[rid][index.column] == key, (
                f"{index.name}: entry {key!r} -> {rid} but row has "
                f"{scan[rid][index.column]!r}"
            )
        # No missing or duplicated entries: one entry per non-NULL row value.
        expected = sorted(
            (row[index.column], rid)
            for rid, row in scan.items()
            if row[index.column] is not None
        )
        assert sorted(entries) == expected, f"{index.name}: entries diverge from scan"
        assert len(index.tree) == len(expected)
        index.tree.check_invariants()


@settings(max_examples=60, deadline=None)
@given(operations, st.booleans())
def test_indexes_agree_with_scan_after_any_interleaving(ops, nullable_values):
    """Index contents == scan contents after every step of a random history."""
    db = Database(cost_model=CostModel.main_memory())
    db.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer, w integer)")
    table = db.catalog.table("t")
    next_index = 0
    live: list[str] = []
    for kind, key, value in ops:
        stored = None if (nullable_values and value == 0) else value
        if kind == "insert":
            if table.try_get_by_key(key) is None:
                db.execute(
                    "INSERT INTO t (id, v, w) VALUES (?, ?, ?)", (key, stored, -value)
                )
        elif kind == "update":
            if table.try_get_by_key(key) is not None:
                db.execute("UPDATE t SET v = ?, w = ? WHERE id = ?", (stored, value, key))
        elif kind == "delete":
            db.execute("DELETE FROM t WHERE id = ?", (key,))
        elif kind == "create_index":
            name = f"idx_{next_index}"
            next_index += 1
            db.execute(f"CREATE INDEX {name} ON t ({'v' if value >= 0 else 'w'})")
            live.append(name)
        elif live:  # drop_index, only when one exists
            db.execute(f"DROP INDEX {live.pop(key % len(live))}")
        check_index_agrees_with_scan(table)
    # Dropped indexes must be gone from table and catalog alike.
    assert set(table.secondary_index_names()) == {
        name for name in db.catalog.index_names()
    }


@settings(max_examples=30, deadline=None)
@given(operations)
def test_index_answers_match_filter_after_churn(ops):
    """A range query through the index equals the scan answer after churn."""
    db = Database(cost_model=CostModel.main_memory())
    db.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer, w integer)")
    db.execute("CREATE INDEX idx_v ON t (v)")
    table = db.catalog.table("t")
    for kind, key, value in ops:
        if kind in ("insert", "create_index"):
            if table.try_get_by_key(key) is None:
                db.execute(
                    "INSERT INTO t (id, v, w) VALUES (?, ?, ?)", (key, value, -value)
                )
        elif kind == "update":
            if table.try_get_by_key(key) is not None:
                db.execute("UPDATE t SET v = ? WHERE id = ?", (value + 1, key))
        elif kind in ("delete", "drop_index"):
            db.execute("DELETE FROM t WHERE id = ?", (key,))
    expected = sorted(
        row["id"] for row in table.scan() if row["v"] is not None and -2 <= row["v"] <= 3
    )
    got = db.execute(
        "SELECT id FROM t WHERE v >= -2 AND v <= 3 ORDER BY id"
    ).rows
    assert [row["id"] for row in got] == expected
