"""Property-based test: every maintenance strategy agrees with the declarative semantics.

For random corpora and random update sequences, the contents of a classification
view maintained by any (strategy, architecture) combination must equal the
result of re-classifying every entity with the final model — the paper's view
semantics (§2.1).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
)
from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.core.view import view_contents
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.workloads.synth_text import SparseCorpusGenerator

MAINTAINERS = [NaiveEagerMaintainer, NaiveLazyMaintainer, HazyEagerMaintainer, HazyLazyMaintainer]


def build_store(kind: str):
    if kind == "mainmemory":
        return InMemoryEntityStore(feature_norm_q=1.0)
    pool = BufferPool(CostModel(), capacity_pages=16, statistics=IOStatistics())
    if kind == "ondisk":
        return OnDiskEntityStore(pool=pool, feature_norm_q=1.0)
    return HybridEntityStore(pool=pool, feature_norm_q=1.0, buffer_fraction=0.1)


@st.composite
def maintenance_scenarios(draw):
    """A random corpus plus a random sequence of (example index, label) updates."""
    corpus_seed = draw(st.integers(min_value=0, max_value=10_000))
    corpus_size = draw(st.integers(min_value=10, max_value=60))
    generator = SparseCorpusGenerator(
        vocabulary_size=120, nonzeros_per_document=6, positive_fraction=0.4, seed=corpus_seed
    )
    documents = generator.generate_list(corpus_size)
    update_count = draw(st.integers(min_value=1, max_value=25))
    updates = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=corpus_size - 1),
                st.sampled_from([-1, 1]),
            ),
            min_size=update_count,
            max_size=update_count,
        )
    )
    alpha = draw(st.sampled_from([0.1, 1.0, 3.0]))
    return documents, updates, alpha


class TestViewConsistencyProperty:
    @given(maintenance_scenarios(), st.sampled_from(MAINTAINERS))
    @settings(max_examples=40, deadline=None)
    def test_every_strategy_matches_final_model_semantics(self, scenario, maintainer_cls):
        documents, updates, alpha = scenario
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=1)
        kwargs = {"alpha": alpha} if maintainer_cls in (HazyEagerMaintainer, HazyLazyMaintainer) else {}
        maintainer = maintainer_cls(build_store("mainmemory"), **kwargs)
        maintainer.bulk_load(entities, trainer.model.copy())
        for index, label in updates:
            doc = documents[index]
            model = trainer.absorb(TrainingExample(doc.entity_id, doc.features, label))
            maintainer.apply_model(model)
        oracle = view_contents(entities, trainer.model)
        assert maintainer.contents() == oracle

    @given(maintenance_scenarios(), st.sampled_from(["ondisk", "hybrid"]))
    @settings(max_examples=15, deadline=None)
    def test_hazy_eager_consistent_on_disk_architectures(self, scenario, architecture):
        documents, updates, alpha = scenario
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=2)
        maintainer = HazyEagerMaintainer(build_store(architecture), alpha=alpha)
        maintainer.bulk_load(entities, trainer.model.copy())
        for index, label in updates:
            doc = documents[index]
            model = trainer.absorb(TrainingExample(doc.entity_id, doc.features, label))
            maintainer.apply_model(model)
        oracle = view_contents(entities, trainer.model)
        positive = {eid for eid, lab in oracle.items() if lab == 1}
        assert set(maintainer.read_all_members(1)) == positive
        assert maintainer.contents() == oracle
