"""Tests for the synthetic workload generators and traces."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.learn.sgd import SGDTrainer
from repro.workloads import (
    DATASETS,
    DenseDatasetGenerator,
    SparseCorpusGenerator,
    citeseer_like,
    dblife_like,
    forest_like,
    generate_dataset,
    interleaved_trace,
    read_trace,
    update_trace,
)


class TestSparseCorpusGenerator:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SparseCorpusGenerator(vocabulary_size=2)
        with pytest.raises(ConfigurationError):
            SparseCorpusGenerator(nonzeros_per_document=0)
        with pytest.raises(ConfigurationError):
            SparseCorpusGenerator(positive_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SparseCorpusGenerator(label_noise=0.7)

    def test_deterministic_given_seed(self):
        a = SparseCorpusGenerator(seed=5).generate_list(20)
        b = SparseCorpusGenerator(seed=5).generate_list(20)
        assert [d.features.to_dict() for d in a] == [d.features.to_dict() for d in b]
        assert [d.label for d in a] == [d.label for d in b]

    def test_different_seeds_differ(self):
        a = SparseCorpusGenerator(seed=1).generate_list(20)
        b = SparseCorpusGenerator(seed=2).generate_list(20)
        assert [d.features.to_dict() for d in a] != [d.features.to_dict() for d in b]

    def test_entity_ids_are_sequential(self):
        docs = SparseCorpusGenerator(seed=0).generate_list(10, start_id=100)
        assert [d.entity_id for d in docs] == list(range(100, 110))

    def test_feature_dimension_bounded_by_vocabulary(self):
        generator = SparseCorpusGenerator(vocabulary_size=50, seed=3)
        docs = generator.generate_list(30)
        assert max(d.features.max_index() for d in docs) < 50

    def test_positive_fraction_approximately_respected(self):
        generator = SparseCorpusGenerator(positive_fraction=0.3, label_noise=0.0, seed=9)
        docs = generator.generate_list(600)
        fraction = sum(1 for d in docs if d.label == 1) / len(docs)
        assert 0.2 < fraction < 0.4

    def test_average_nonzeros_close_to_target(self):
        generator = SparseCorpusGenerator(nonzeros_per_document=20, vocabulary_size=5000, seed=1)
        docs = generator.generate_list(200)
        assert 10 < generator.average_nonzeros(docs) <= 21

    def test_text_matches_vector_terms(self):
        generator = SparseCorpusGenerator(seed=2)
        doc = generator.generate_list(1)[0]
        tokens = set(doc.text.split())
        indices = {int(token.removeprefix("term")) for token in tokens}
        assert indices == set(doc.features.indices())

    def test_labels_are_binary(self):
        docs = SparseCorpusGenerator(seed=4).generate_list(50)
        assert set(d.label for d in docs) <= {-1, 1}

    def test_corpus_is_learnable(self):
        generator = SparseCorpusGenerator(
            vocabulary_size=400, nonzeros_per_document=12, positive_fraction=0.4, seed=8
        )
        docs = generator.generate_list(400)
        trainer = SGDTrainer(loss="svm", seed=0)
        from repro.learn.sgd import TrainingExample

        trainer.fit(
            [TrainingExample(d.entity_id, d.features, d.label) for d in docs[:300]], epochs=3
        )
        holdout = docs[300:]
        accuracy = sum(1 for d in holdout if trainer.predict(d.features) == d.label) / len(holdout)
        majority = max(
            sum(1 for d in holdout if d.label == 1), sum(1 for d in holdout if d.label == -1)
        ) / len(holdout)
        assert accuracy > majority


class TestDenseGenerator:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DenseDatasetGenerator(dimensions=1)
        with pytest.raises(ConfigurationError):
            DenseDatasetGenerator(class_count=1)
        with pytest.raises(ConfigurationError):
            DenseDatasetGenerator(label_noise=0.9)

    def test_deterministic_given_seed(self):
        a = DenseDatasetGenerator(seed=3).generate_list(10)
        b = DenseDatasetGenerator(seed=3).generate_list(10)
        assert [x.features.to_dict() for x in a] == [x.features.to_dict() for x in b]

    def test_vectors_are_unit_l2(self):
        for example in DenseDatasetGenerator(seed=1).generate_list(20):
            assert example.features.norm(2) == pytest.approx(1.0)

    def test_multiclass_labels_in_range(self):
        generator = DenseDatasetGenerator(class_count=7, seed=2)
        for example in generator.generate_list(50):
            assert 0 <= example.multiclass_label < 7

    def test_binary_label_is_largest_class_vs_rest(self):
        generator = DenseDatasetGenerator(class_count=5, label_noise=0.0, seed=6)
        for example in generator.generate_list(50):
            assert example.label == (1 if example.multiclass_label == 0 else -1)


class TestNamedDatasets:
    def test_figure3_datasets_exist(self):
        assert set(DATASETS) == {"forest", "dblife", "citeseer"}

    def test_generate_by_name_and_helpers(self):
        assert generate_dataset("forest", scale=0.05).spec.abbreviation == "FC"
        assert dblife_like(scale=0.05).spec.abbreviation == "DB"
        assert citeseer_like(scale=0.05).spec.abbreviation == "CS"
        assert forest_like(scale=0.05).spec.kind == "dense"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_dataset("imagenet")

    def test_scale_controls_entity_count(self):
        small = dblife_like(scale=0.05)
        large = dblife_like(scale=0.2)
        assert large.entity_count() > small.entity_count()
        with pytest.raises(ConfigurationError):
            DATASETS["dblife"].scaled_entities(0.0)

    def test_statistics_row_reports_paper_and_generated_numbers(self):
        dataset = dblife_like(scale=0.05)
        row = dataset.statistics_row()
        assert row["paper_entities"] == 124_000
        assert row["generated_entities"] == dataset.entity_count()
        assert row["generated_avg_nonzeros"] > 0

    def test_labels_cover_every_entity(self):
        dataset = citeseer_like(scale=0.02)
        assert set(dataset.labels) == {entity_id for entity_id, _ in dataset.entities}

    def test_forest_has_multiclass_labels(self):
        dataset = forest_like(scale=0.02)
        assert dataset.multiclass_labels
        assert set(dataset.multiclass_labels.values()) <= set(range(7))

    def test_training_examples_sampled_from_entities(self):
        dataset = dblife_like(scale=0.05)
        examples = dataset.training_examples(50, seed=3)
        ids = {entity_id for entity_id, _ in dataset.entities}
        assert all(entity_id in ids for entity_id, _, _ in examples)
        assert all(label in (-1, 1) for _, _, label in examples)


class TestTraces:
    def test_update_trace_split(self, small_dataset):
        trace = update_trace(small_dataset, warmup=30, timed=20, seed=1)
        assert len(trace) == 50
        assert len(trace.warm_examples()) == 30
        assert len(trace.timed_examples()) == 20

    def test_update_trace_rejects_negative_counts(self, small_dataset):
        with pytest.raises(ConfigurationError):
            update_trace(small_dataset, warmup=-1, timed=5)

    def test_read_trace_ids_are_valid(self, small_dataset):
        ids = {entity_id for entity_id, _ in small_dataset.entities}
        assert all(entity_id in ids for entity_id in read_trace(small_dataset, 100, seed=2))

    def test_read_trace_negative_count_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            read_trace(small_dataset, -1)

    def test_interleaved_trace_mixes_updates_and_reads(self, small_dataset):
        events = list(interleaved_trace(small_dataset, updates=10, reads_per_update=2, seed=3))
        kinds = [kind for kind, _ in events]
        assert kinds.count("update") == 10
        assert kinds.count("read") == 20

    def test_traces_are_deterministic(self, small_dataset):
        a = update_trace(small_dataset, warmup=5, timed=5, seed=7)
        b = update_trace(small_dataset, warmup=5, timed=5, seed=7)
        assert [e.entity_id for e in a.examples] == [e.entity_id for e in b.examples]
