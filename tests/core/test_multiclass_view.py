"""Tests for multiclass classification views (Appendix B.5.4 / Figure 12B)."""

from __future__ import annotations

import pytest

from repro.core.maintainers import HazyEagerMaintainer, NaiveEagerMaintainer
from repro.core.multiclass_view import MulticlassClassificationView
from repro.core.stores import InMemoryEntityStore
from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.sgd import SGDTrainer
from repro.workloads.synth_dense import DenseDatasetGenerator


def build_view(strategy: str = "hazy", labels=None) -> MulticlassClassificationView:
    labels = labels if labels is not None else [0, 1, 2]
    maintainer_factory = (
        (lambda store: HazyEagerMaintainer(store))
        if strategy == "hazy"
        else (lambda store: NaiveEagerMaintainer(store))
    )
    return MulticlassClassificationView(
        labels=labels,
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=2.0),
        maintainer_factory=maintainer_factory,
        trainer_factory=lambda: SGDTrainer(loss="svm", learning_rate=0.5, decay=0.0),
    )


def dense_data(count: int = 120, classes: int = 3):
    generator = DenseDatasetGenerator(dimensions=12, class_count=classes, label_noise=0.0, seed=4)
    examples = generator.generate_list(count)
    entities = [(ex.entity_id, ex.features) for ex in examples]
    labels = {ex.entity_id: ex.multiclass_label for ex in examples}
    return entities, labels


class TestConstruction:
    def test_requires_two_labels(self):
        with pytest.raises(ConfigurationError):
            build_view(labels=[0])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(labels=[0, 0])

    def test_operations_require_bulk_load(self):
        view = build_view()
        with pytest.raises(ConfigurationError):
            view.absorb_example(1, None, 0)


class TestTrainingAndPrediction:
    def test_unknown_label_rejected(self):
        entities, _ = dense_data(20)
        view = build_view()
        view.bulk_load(entities)
        with pytest.raises(ConfigurationError):
            view.absorb_example(entities[0][0], entities[0][1], 99)

    def test_predict_before_training_raises(self):
        entities, _ = dense_data(20)
        view = build_view()
        view.bulk_load(entities)
        with pytest.raises(NotFittedError):
            view.predict(entities[0][0])

    def test_learns_multiclass_assignment(self):
        entities, labels = dense_data(150, classes=3)
        view = build_view("hazy")
        view.bulk_load(entities)
        for entity_id, features in entities:
            view.absorb_example(entity_id, features, labels[entity_id])
        for entity_id, features in entities:
            view.absorb_example(entity_id, features, labels[entity_id])
        correct = sum(1 for entity_id, _ in entities if view.predict(entity_id) == labels[entity_id])
        assert correct / len(entities) > 0.7

    def test_updates_counter(self):
        entities, labels = dense_data(30)
        view = build_view()
        view.bulk_load(entities)
        for entity_id, features in entities[:10]:
            view.absorb_example(entity_id, features, labels[entity_id])
        assert view.updates == 10

    def test_members_partition_is_consistent(self):
        entities, labels = dense_data(100, classes=3)
        view = build_view("hazy")
        view.bulk_load(entities)
        for entity_id, features in entities:
            view.absorb_example(entity_id, features, labels[entity_id])
        members_union = set()
        for label in view.labels:
            members_union.update(view.members(label))
        assert members_union.issubset({entity_id for entity_id, _ in entities})

    def test_members_unknown_label_rejected(self):
        entities, _ = dense_data(20)
        view = build_view()
        view.bulk_load(entities)
        with pytest.raises(ConfigurationError):
            view.members(99)

    def test_add_entity_propagates_to_all_binary_views(self):
        entities, labels = dense_data(40)
        view = build_view()
        view.bulk_load(entities)
        for entity_id, features in entities[:20]:
            view.absorb_example(entity_id, features, labels[entity_id])
        extra_entities, _ = dense_data(45)
        new_id, new_features = extra_entities[-1]
        view.add_entity(new_id + 100_000, new_features)
        for maintainer in view.maintainers.values():
            assert maintainer.store.count() == len(entities) + 1

    def test_hazy_does_less_update_work_than_naive(self):
        entities, labels = dense_data(200, classes=4)
        hazy = MulticlassClassificationView(
            labels=[0, 1, 2, 3],
            store_factory=lambda: InMemoryEntityStore(feature_norm_q=2.0),
            maintainer_factory=lambda store: HazyEagerMaintainer(store),
        )
        naive = MulticlassClassificationView(
            labels=[0, 1, 2, 3],
            store_factory=lambda: InMemoryEntityStore(feature_norm_q=2.0),
            maintainer_factory=lambda store: NaiveEagerMaintainer(store),
        )
        for view in (hazy, naive):
            view.bulk_load(entities)
            # Warm phase: first half of the stream.
            for entity_id, features in entities[:100]:
                view.absorb_example(entity_id, features, labels[entity_id])
        hazy_before = hazy.total_simulated_update_seconds()
        naive_before = naive.total_simulated_update_seconds()
        for view in (hazy, naive):
            for entity_id, features in entities[100:150]:
                view.absorb_example(entity_id, features, labels[entity_id])
        hazy_cost = hazy.total_simulated_update_seconds() - hazy_before
        naive_cost = naive.total_simulated_update_seconds() - naive_before
        assert hazy_cost < naive_cost
