"""Contract tests run against all three entity-store architectures, plus
architecture-specific tests for the on-disk and hybrid stores."""

from __future__ import annotations

import pytest

from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import DuplicateKeyError, KeyNotFoundError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector


def make_store(kind: str, buffer_pool_pages: int | None = None):
    if kind == "mainmemory":
        return InMemoryEntityStore(feature_norm_q=1.0)
    pool = BufferPool(CostModel(), capacity_pages=buffer_pool_pages, statistics=IOStatistics())
    if kind == "ondisk":
        return OnDiskEntityStore(pool=pool, feature_norm_q=1.0)
    return HybridEntityStore(pool=pool, feature_norm_q=1.0, buffer_fraction=0.1)


def sample_entities(count: int = 40) -> list[tuple[int, SparseVector]]:
    # Margins under the model below spread from negative to positive.
    return [(i, SparseVector({0: 1.0, 1: i / 10.0})) for i in range(count)]


def sample_model() -> LinearModel:
    # margin = -2 + 0.1 * i for entity i (with the vectors above).
    return LinearModel(weights=SparseVector({0: -2.0, 1: 1.0}), bias=0.0, version=0)


STORE_KINDS = ["mainmemory", "ondisk", "hybrid"]


@pytest.mark.parametrize("kind", STORE_KINDS)
class TestStoreContract:
    def test_bulk_load_populates_and_returns_cost(self, kind):
        store = make_store(kind)
        cost = store.bulk_load(sample_entities(), sample_model())
        assert store.count() == 40
        assert cost >= 0.0

    def test_bulk_load_rejects_duplicate_ids(self, kind):
        store = make_store(kind)
        with pytest.raises(DuplicateKeyError):
            store.bulk_load([(1, SparseVector({0: 1.0})), (1, SparseVector({0: 2.0}))], sample_model())

    def test_labels_follow_model_sign(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        for record in store.scan_all():
            assert record.label == (1 if record.eps >= 0 else -1)

    def test_label_counts(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        positives = store.count_label(1)
        negatives = store.count_label(-1)
        assert positives + negatives == 40
        assert positives == sum(1 for r in store.scan_all() if r.label == 1)

    def test_get_by_id(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        record = store.get(25)
        assert record.entity_id == 25
        assert record.eps == pytest.approx(0.5)

    def test_get_missing_raises(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        with pytest.raises(KeyNotFoundError):
            store.get(999)

    def test_scan_all_is_sorted_by_eps(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        eps_values = [record.eps for record in store.scan_all()]
        assert eps_values == sorted(eps_values)

    def test_range_scan_matches_filter(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        low, high = -0.55, 0.35
        expected = sorted(
            record.entity_id for record in store.scan_all() if low <= record.eps <= high
        )
        actual = sorted(record.entity_id for record in store.scan_eps_range(low, high))
        assert actual == expected

    def test_at_least_and_at_most_scans(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        at_least = {r.entity_id for r in store.scan_eps_at_least(0.0)}
        at_most = {r.entity_id for r in store.scan_eps_at_most(-0.05)}
        assert at_least == {r.entity_id for r in store.scan_all() if r.eps >= 0.0}
        assert at_most == {r.entity_id for r in store.scan_all() if r.eps <= -0.05}

    def test_update_label(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        record = store.get(0)
        new_label = -record.label
        store.update_label(0, new_label)
        assert store.get(0).label == new_label

    def test_update_label_adjusts_counts(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        positives = store.count_label(1)
        store.update_label(0, 1)  # entity 0 is negative under the model
        assert store.count_label(1) == positives + 1

    def test_update_label_missing_raises(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        with pytest.raises(KeyNotFoundError):
            store.update_label(999, 1)

    def test_insert_new_entity(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        store.insert(1000, SparseVector({1: 9.0}), eps=7.0, label=1)
        assert store.count() == 41
        assert store.get(1000).label == 1
        assert 1000 in {r.entity_id for r in store.scan_eps_at_least(6.0)}

    def test_insert_duplicate_rejected(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        with pytest.raises(DuplicateKeyError):
            store.insert(0, SparseVector({0: 1.0}), eps=0.0, label=1)

    def test_reorganize_reclusters_under_new_model(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        flipped = LinearModel(weights=SparseVector({0: 2.0, 1: -1.0}), bias=0.0, version=5)
        cost = store.reorganize(flipped)
        assert cost >= 0.0
        eps_values = [record.eps for record in store.scan_all()]
        assert eps_values == sorted(eps_values)
        for record in store.scan_all():
            assert record.eps == pytest.approx(flipped.margin(record.features))
            assert record.label == (1 if record.eps >= 0 else -1)

    def test_max_feature_norm_tracks_largest_vector(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        baseline = store.max_feature_norm
        store.insert(500, SparseVector({0: 50.0}), eps=0.0, label=1)
        assert store.max_feature_norm >= max(baseline, 50.0)

    def test_memory_usage_reports_total(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        usage = store.memory_usage()
        assert usage["total"] > 0
        assert usage["total"] == sum(v for k, v in usage.items() if k != "total")

    def test_count_eps_in_range(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        assert store.count_eps_in_range(-0.15, 0.15) == sum(
            1 for r in store.scan_all() if -0.15 <= r.eps <= 0.15
        )

    def test_scan_cost_estimate_nonnegative(self, kind):
        store = make_store(kind)
        store.bulk_load(sample_entities(), sample_model())
        assert store.scan_cost_estimate() >= 0.0


class TestOnDiskSpecifics:
    def test_operations_charge_simulated_io(self):
        store = make_store("ondisk", buffer_pool_pages=2)
        store.bulk_load(sample_entities(200), sample_model())
        before = store.cost_snapshot()
        list(store.scan_all())
        assert store.cost_snapshot() > before
        assert store.stats.page_reads > 0

    def test_band_scan_touches_fewer_pages_than_full_scan(self):
        store = make_store("ondisk", buffer_pool_pages=2)
        store.bulk_load(sample_entities(400), sample_model())
        before = store.stats.page_reads
        list(store.scan_all())
        full_scan_reads = store.stats.page_reads - before
        before = store.stats.page_reads
        list(store.scan_eps_range(-0.05, 0.05))
        band_reads = store.stats.page_reads - before
        assert band_reads < full_scan_reads

    def test_reorganization_is_more_expensive_than_band_scan(self):
        store = make_store("ondisk", buffer_pool_pages=4)
        store.bulk_load(sample_entities(300), sample_model())
        before = store.cost_snapshot()
        list(store.scan_eps_range(-0.05, 0.05))
        band_cost = store.cost_snapshot() - before
        reorg_cost = store.reorganize(sample_model())
        assert reorg_cost > band_cost


class TestHybridSpecifics:
    def test_eps_hint_served_from_memory(self):
        store = make_store("hybrid")
        store.bulk_load(sample_entities(), sample_model())
        io_before = store.stats.page_reads
        hint = store.eps_hint(25)
        assert hint == pytest.approx(0.5)
        assert store.stats.page_reads == io_before
        assert store.epsmap_served == 1

    def test_eps_hint_missing_entity_is_none(self):
        store = make_store("hybrid")
        store.bulk_load(sample_entities(), sample_model())
        assert store.eps_hint(999) is None

    def test_buffer_serves_hot_entities(self):
        store = HybridEntityStore(
            pool=BufferPool(CostModel(), statistics=IOStatistics()),
            feature_norm_q=1.0,
            buffer_capacity=10,
        )
        store.bulk_load(sample_entities(), sample_model())
        # The buffered entities are the ones with the smallest |eps| (around id 20).
        assert store.buffer_size() == 10
        store.get(20)
        assert store.buffer_served >= 1

    def test_buffer_write_through_on_label_update(self):
        store = HybridEntityStore(
            pool=BufferPool(CostModel(), statistics=IOStatistics()),
            feature_norm_q=1.0,
            buffer_capacity=40,
        )
        store.bulk_load(sample_entities(), sample_model())
        store.update_label(20, 1)
        assert store.get(20).label == 1
        assert store.disk.get(20).label == 1

    def test_memory_usage_breaks_out_eps_map_and_buffer(self):
        store = make_store("hybrid")
        store.bulk_load(sample_entities(), sample_model())
        usage = store.memory_usage()
        assert usage["eps_map"] == 16 * 40
        assert "buffer" in usage and "disk_indexes" in usage

    def test_eps_map_is_much_smaller_than_feature_data(self):
        """The Figure 6(A) claim: the eps-map is far smaller than the data set."""
        entities = [
            (i, SparseVector({j: 1.0 for j in range(i % 50 + 10)})) for i in range(200)
        ]
        store = make_store("hybrid")
        store.bulk_load(entities, sample_model())
        usage = store.memory_usage()
        data_bytes = sum(features.approx_size_bytes() for _, features in entities)
        assert usage["eps_map"] < data_bytes / 5

    def test_invalid_buffer_fraction(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            HybridEntityStore(buffer_fraction=1.5)

    def test_reorganize_rebuilds_eps_map(self):
        store = make_store("hybrid")
        store.bulk_load(sample_entities(), sample_model())
        flipped = LinearModel(weights=SparseVector({0: 2.0, 1: -1.0}), bias=0.0, version=3)
        store.reorganize(flipped)
        assert store.eps_hint(0) == pytest.approx(flipped.margin(store.get(0).features))
