"""Tests for the maintainers' batch APIs (batch-apply, batched reads, removal)."""

from __future__ import annotations

import pytest

from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
)
from repro.core.stores import InMemoryEntityStore, OnDiskEntityStore
from repro.core.view import view_contents
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import KeyNotFoundError
from repro.learn.sgd import SGDTrainer, TrainingExample

MAINTAINERS = {
    "hazy-eager": lambda store: HazyEagerMaintainer(store, alpha=1.0),
    "hazy-lazy": lambda store: HazyLazyMaintainer(store, alpha=1.0),
    "naive-eager": lambda store: NaiveEagerMaintainer(store),
    "naive-lazy": lambda store: NaiveLazyMaintainer(store),
}


def make_models(tiny_corpus, count=12, seed=9):
    """A run of successive model snapshots from incremental training."""
    trainer = SGDTrainer(loss="svm", seed=seed)
    for doc in tiny_corpus[:40]:
        trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))
    models = []
    for doc in tiny_corpus[40 : 40 + count]:
        models.append(trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label)))
    return trainer, models


@pytest.mark.parametrize("name", sorted(MAINTAINERS))
def test_apply_model_batch_matches_sequential_replay(tiny_entities, tiny_corpus, name):
    factory = MAINTAINERS[name]
    trainer, models = make_models(tiny_corpus)
    base_model = SGDTrainer(loss="svm", seed=9)
    for doc in tiny_corpus[:40]:
        base_model.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))

    sequential = factory(InMemoryEntityStore(feature_norm_q=1.0))
    sequential.bulk_load(tiny_entities, base_model.model.copy())
    for model in models:
        sequential.apply_model(model)

    batched = factory(InMemoryEntityStore(feature_norm_q=1.0))
    batched.bulk_load(tiny_entities, base_model.model.copy())
    batched.apply_model_batch(models)

    oracle = view_contents(tiny_entities, models[-1])
    assert batched.contents() == oracle
    assert sequential.contents() == oracle


def test_eager_batch_is_cheaper_than_replay(tiny_entities, tiny_corpus):
    _, models = make_models(tiny_corpus)
    base = SGDTrainer(loss="svm", seed=9)
    for doc in tiny_corpus[:40]:
        base.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))

    replay = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=1.0)
    replay.bulk_load(tiny_entities, base.model.copy())
    replay_start = replay.store.cost_snapshot()
    for model in models:
        replay.apply_model(model)
    replay_cost = replay.store.cost_snapshot() - replay_start

    batched = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=1.0)
    batched.bulk_load(tiny_entities, base.model.copy())
    batch_start = batched.store.cost_snapshot()
    batched.apply_model_batch(models)
    batch_cost = batched.store.cost_snapshot() - batch_start

    # One cumulative-band pass must beat twelve per-model band passes.
    assert batch_cost < replay_cost


@pytest.mark.parametrize("name", sorted(MAINTAINERS))
def test_read_many_matches_read_single(tiny_entities, tiny_corpus, name):
    factory = MAINTAINERS[name]
    trainer, models = make_models(tiny_corpus)
    maintainer = factory(InMemoryEntityStore(feature_norm_q=1.0))
    maintainer.bulk_load(tiny_entities, trainer.model.copy())
    for model in models[:3]:
        maintainer.apply_model(model)

    ids = [entity_id for entity_id, _ in tiny_entities][:50]
    batched = maintainer.read_many(ids)
    for entity_id in ids:
        assert batched[entity_id] == maintainer.read_single(entity_id)


def test_read_many_amortizes_statement_overhead(tiny_entities, tiny_corpus):
    trainer, _ = make_models(tiny_corpus)
    loop = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=1.0)
    loop.bulk_load(tiny_entities, trainer.model.copy())
    ids = [entity_id for entity_id, _ in tiny_entities][:60]
    loop_start = loop.store.cost_snapshot()
    for entity_id in ids:
        loop.read_single(entity_id)
    loop_cost = loop.store.cost_snapshot() - loop_start

    batched = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=1.0)
    batched.bulk_load(tiny_entities, trainer.model.copy())
    batch_start = batched.store.cost_snapshot()
    batched.read_many(ids)
    batch_cost = batched.store.cost_snapshot() - batch_start

    # Sixty statement dispatches collapse into one.
    assert batch_cost < loop_cost / 10
    assert batched.stats.batch_rounds == 1
    assert batched.stats.batched_reads == len(ids)


def test_read_many_coalesces_into_a_scan_on_disk(tiny_entities, tiny_corpus):
    trainer, _ = make_models(tiny_corpus)
    pool = BufferPool(CostModel(), capacity_pages=8, statistics=IOStatistics())
    maintainer = NaiveEagerMaintainer(OnDiskEntityStore(pool=pool, feature_norm_q=1.0))
    maintainer.bulk_load(tiny_entities, trainer.model.copy())
    ids = [entity_id for entity_id, _ in tiny_entities]  # every entity: scan wins
    expected = {entity_id: maintainer.store.get(entity_id).label for entity_id in ids}
    start_random = maintainer.store.stats.random_reads
    results = maintainer.read_many(ids)
    assert results == expected
    # The batch was served by one sequential pass, not per-entity random I/O.
    assert maintainer.store.stats.random_reads == start_random


def test_read_many_unknown_id_raises(tiny_entities, tiny_corpus):
    trainer, _ = make_models(tiny_corpus)
    maintainer = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=1.0)
    maintainer.bulk_load(tiny_entities, trainer.model.copy())
    with pytest.raises(KeyNotFoundError):
        maintainer.read_many(["definitely-not-there"])


@pytest.mark.parametrize(
    "store_factory",
    [
        lambda: InMemoryEntityStore(feature_norm_q=1.0),
        lambda: OnDiskEntityStore(
            pool=BufferPool(CostModel(), capacity_pages=16, statistics=IOStatistics()),
            feature_norm_q=1.0,
        ),
    ],
    ids=["mainmemory", "ondisk"],
)
def test_remove_entity(tiny_entities, tiny_corpus, store_factory):
    trainer, _ = make_models(tiny_corpus)
    maintainer = HazyEagerMaintainer(store_factory(), alpha=1.0)
    maintainer.bulk_load(tiny_entities, trainer.model.copy())
    victim = tiny_entities[3][0]
    count_before = maintainer.store.count()
    maintainer.remove_entity(victim)
    assert maintainer.store.count() == count_before - 1
    with pytest.raises(KeyNotFoundError):
        maintainer.store.get(victim)
    assert victim not in maintainer.contents()
    # Membership counts reflect the removal.
    assert len(maintainer.read_all_members(1)) + len(maintainer.read_all_members(-1)) == (
        count_before - 1
    )
