"""Unit tests for the Skiing strategy and the offline optimal scheduler."""

from __future__ import annotations

import math

import pytest

from repro.core.skiing import (
    OfflineOptimalScheduler,
    SkiingStrategy,
    optimal_alpha,
    simulate_skiing_on_trace,
)
from repro.exceptions import ConfigurationError


class TestOptimalAlpha:
    def test_alpha_is_one_when_sigma_zero(self):
        """Theorem 3.3: as sigma -> 0, alpha -> 1 and the ratio tends to 2."""
        assert optimal_alpha(0.0) == pytest.approx(1.0)

    def test_alpha_solves_quadratic(self):
        for sigma in (0.1, 0.5, 1.0, 2.0):
            alpha = optimal_alpha(sigma)
            assert alpha**2 + sigma * alpha - 1.0 == pytest.approx(0.0, abs=1e-12)

    def test_alpha_decreases_with_sigma(self):
        assert optimal_alpha(1.0) < optimal_alpha(0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_alpha(-0.1)


class TestSkiingStrategy:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SkiingStrategy(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            SkiingStrategy(reorganization_cost=-1.0)

    def test_accumulates_incremental_costs(self):
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=10.0)
        strategy.record_incremental_step(3.0)
        strategy.record_incremental_step(4.0)
        assert strategy.accumulated_cost == pytest.approx(7.0)
        assert not strategy.should_reorganize()

    def test_reorganizes_when_waste_reaches_threshold(self):
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=10.0)
        strategy.record_incremental_step(6.0)
        strategy.record_incremental_step(5.0)
        assert strategy.should_reorganize()

    def test_alpha_scales_threshold(self):
        strategy = SkiingStrategy(alpha=2.0, reorganization_cost=10.0)
        strategy.record_incremental_step(15.0)
        assert not strategy.should_reorganize()
        strategy.record_incremental_step(5.0)
        assert strategy.should_reorganize()

    def test_reorganization_resets_accumulator_and_updates_cost(self):
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=10.0)
        strategy.record_incremental_step(12.0)
        decision = strategy.record_reorganization(8.0)
        assert decision.reorganize
        assert strategy.accumulated_cost == 0.0
        assert strategy.reorganization_cost == 8.0
        assert strategy.reorganizations == 1

    def test_zero_reorg_cost_triggers_immediately(self):
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=0.0)
        assert strategy.should_reorganize()

    def test_negative_costs_rejected(self):
        strategy = SkiingStrategy()
        with pytest.raises(ConfigurationError):
            strategy.record_incremental_step(-1.0)
        with pytest.raises(ConfigurationError):
            strategy.record_reorganization(-1.0)

    def test_lazy_waste_formula(self):
        """Section 3.4: c = (NR - N+) / NR * S."""
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=100.0)
        charged = strategy.record_lazy_waste(tuples_read=200, members=150, scan_cost=8.0)
        assert charged == pytest.approx((200 - 150) / 200 * 8.0)
        assert strategy.accumulated_cost == pytest.approx(charged)

    def test_lazy_waste_zero_reads(self):
        assert SkiingStrategy().record_lazy_waste(0, 0, 5.0) == 0.0

    def test_total_cost_and_history(self):
        strategy = SkiingStrategy(alpha=1.0, reorganization_cost=5.0)
        strategy.record_incremental_step(2.0)
        strategy.record_reorganization(5.0)
        assert strategy.total_cost() == pytest.approx(7.0)
        assert len(strategy.history) == 2
        assert strategy.rounds == 2


class TestOfflineOptimal:
    def test_never_reorganize_when_costs_are_zero(self):
        scheduler = OfflineOptimalScheduler(reorganization_cost=10.0)
        cost, schedule = scheduler.solve(lambda s, i: 0.0, rounds=20)
        assert cost == 0.0
        assert schedule == []

    def test_single_reorganization_beats_paying_forever(self):
        # Cost is 1 per round until reorganized, 0 afterwards.
        scheduler = OfflineOptimalScheduler(reorganization_cost=3.0)
        cost, schedule = scheduler.solve(lambda s, i: 1.0 if s == 0 else 0.0, rounds=10)
        assert cost == pytest.approx(3.0)  # reorganize at round 1
        assert schedule == [1]

    def test_no_reorganization_when_too_expensive(self):
        scheduler = OfflineOptimalScheduler(reorganization_cost=100.0)
        cost, schedule = scheduler.solve(lambda s, i: 1.0 if s == 0 else 0.0, rounds=10)
        assert cost == pytest.approx(10.0)
        assert schedule == []

    def test_matrix_interface(self):
        # costs[s][i]: always 2 regardless of reorganization.
        costs = [[2.0] * 6 for _ in range(6)]
        scheduler = OfflineOptimalScheduler(reorganization_cost=50.0)
        cost, schedule = scheduler.solve_from_matrix(costs)
        assert cost == pytest.approx(10.0)
        assert schedule == []

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            OfflineOptimalScheduler(1.0).solve(lambda s, i: 0.0, rounds=-1)

    def test_invalid_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            OfflineOptimalScheduler(-1.0)


class TestCompetitiveRatio:
    def _ratio(self, cost_fn, rounds: int, reorg_cost: float, alpha: float = 1.0) -> float:
        skiing_cost, _ = simulate_skiing_on_trace(cost_fn, rounds, reorg_cost, alpha=alpha)
        optimal_cost, _ = OfflineOptimalScheduler(reorg_cost).solve(cost_fn, rounds)
        if optimal_cost == 0:
            return 1.0 if skiing_cost == 0 else math.inf
        return skiing_cost / optimal_cost

    def test_ratio_bounded_on_linear_drift(self):
        """Costs grow linearly with rounds since reorganization (monotone)."""
        ratio = self._ratio(lambda s, i: 0.3 * (i - s), rounds=40, reorg_cost=5.0)
        assert ratio <= 2.0 + 1e-9

    def test_ratio_bounded_on_constant_costs(self):
        ratio = self._ratio(lambda s, i: 0.5 if s == 0 else 0.2, rounds=60, reorg_cost=4.0)
        assert ratio <= 2.0 + 1e-9

    def test_ratio_bounded_on_step_costs(self):
        def cost(s: int, i: int) -> float:
            return 1.0 if (i - s) > 5 else 0.1

        assert self._ratio(cost, rounds=50, reorg_cost=3.0) <= 2.0 + 1e-9

    def test_skiing_never_much_worse_than_never_reorganizing(self):
        skiing_cost, reorgs = simulate_skiing_on_trace(
            lambda s, i: 0.0, rounds=30, reorganization_cost=5.0
        )
        assert skiing_cost == 0.0
        assert reorgs == []
