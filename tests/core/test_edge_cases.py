"""Edge-case and failure-injection tests for the maintenance core."""

from __future__ import annotations

import pytest

from repro.core.bounds import WaterBandTracker
from repro.core.maintainers import HazyEagerMaintainer, HazyLazyMaintainer, NaiveEagerMaintainer
from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import DuplicateKeyError, KeyNotFoundError
from repro.learn.model import LinearModel
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector


class TestEmptyAndTinyViews:
    def test_bulk_load_empty_corpus(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load([], LinearModel())
        assert maintainer.read_all_members(1) == []
        assert maintainer.store.count() == 0

    def test_updates_on_empty_view_are_harmless(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        trainer = SGDTrainer()
        maintainer.bulk_load([], trainer.model)
        model = trainer.absorb(TrainingExample(1, SparseVector({0: 1.0}), 1))
        maintainer.apply_model(model)
        assert maintainer.stats.updates == 1

    def test_single_entity_view(self):
        maintainer = HazyLazyMaintainer(InMemoryEntityStore())
        trainer = SGDTrainer()
        maintainer.bulk_load([(7, SparseVector({0: 1.0}))], trainer.model)
        model = trainer.absorb(TrainingExample(7, SparseVector({0: 1.0}), 1))
        maintainer.apply_model(model)
        assert maintainer.read_single(7) == model.predict(SparseVector({0: 1.0}))
        assert maintainer.read_all_members(1) in ([7], [])

    def test_entities_added_before_any_training(self):
        maintainer = NaiveEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load([], LinearModel())
        label = maintainer.add_entity(1, SparseVector({0: -3.0}))
        # With the zero model every margin is 0 and sign(0) = +1.
        assert label == 1
        assert maintainer.read_single(1) == 1


class TestDuplicateAndMissingEntities:
    def test_duplicate_add_entity_rejected(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load([(1, SparseVector({0: 1.0}))], LinearModel())
        with pytest.raises(DuplicateKeyError):
            maintainer.add_entity(1, SparseVector({0: 2.0}))

    def test_read_of_unknown_entity_raises(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load([(1, SparseVector({0: 1.0}))], LinearModel())
        with pytest.raises(KeyNotFoundError):
            maintainer.read_single(99)

    def test_hybrid_read_of_unknown_entity_raises(self):
        store = HybridEntityStore(
            pool=BufferPool(CostModel(), statistics=IOStatistics()), buffer_fraction=0.1
        )
        maintainer = HazyLazyMaintainer(store)
        maintainer.bulk_load([(1, SparseVector({0: 1.0}))], LinearModel())
        with pytest.raises(KeyNotFoundError):
            maintainer.read_single(42)


class TestExtremeModels:
    def test_huge_model_jump_forces_full_band(self):
        """A drastic model change puts everything in the band — and stays correct."""
        entities = [(i, SparseVector({0: 1.0, 1: float(i)})) for i in range(30)]
        maintainer = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0))
        trainer = SGDTrainer(learning_rate=50.0, decay=0.0)
        maintainer.bulk_load(entities, trainer.model.copy())
        model = trainer.absorb(TrainingExample(0, SparseVector({0: 1.0, 1: 29.0}), -1))
        maintainer.apply_model(model)
        for entity_id, features in entities:
            assert maintainer.read_single(entity_id) == model.predict(features)

    def test_identical_model_update_is_free_of_reclassification(self):
        entities = [(i, SparseVector({0: float(i) - 5.0})) for i in range(10)]
        maintainer = HazyEagerMaintainer(InMemoryEntityStore())
        model = LinearModel(weights=SparseVector({0: 1.0}), bias=0.0, version=1)
        maintainer.bulk_load(entities, model)
        same = model.copy()
        same.version = 2
        maintainer.apply_model(same)
        # Band is degenerate [0, 0]: only tuples with eps exactly 0 are rechecked.
        assert maintainer.stats.tuples_reclassified <= 1

    def test_negative_bias_only_model(self):
        entities = [(i, SparseVector({0: 1.0})) for i in range(5)]
        maintainer = NaiveEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load(entities, LinearModel(bias=5.0))
        assert maintainer.read_all_members(1) == []
        assert len(maintainer.read_all_members(-1)) == 5


class TestSkiingIntegrationWithStores:
    def test_reorganization_cost_tracks_measured_cost(self):
        pool = BufferPool(CostModel(), capacity_pages=8, statistics=IOStatistics())
        store = OnDiskEntityStore(pool=pool, feature_norm_q=1.0)
        maintainer = HazyEagerMaintainer(store, alpha=0.01)
        entities = [(i, SparseVector({0: 1.0, 1: i / 50.0})) for i in range(300)]
        trainer = SGDTrainer(learning_rate=1.0, decay=0.0)
        maintainer.bulk_load(entities, trainer.model.copy())
        initial_estimate = maintainer.skiing.reorganization_cost
        assert initial_estimate > 0
        for i in range(20):
            example = TrainingExample(i, entities[i][1], 1 if i % 2 == 0 else -1)
            maintainer.apply_model(trainer.absorb(example))
        if maintainer.stats.reorganizations:
            # After a real reorganization, S reflects the measured cost.
            assert maintainer.skiing.reorganization_cost > 0

    def test_alpha_zero_reorganizes_every_round(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore(), alpha=0.0)
        entities = [(i, SparseVector({0: float(i)})) for i in range(20)]
        trainer = SGDTrainer()
        maintainer.bulk_load(entities, trainer.model.copy())
        for i in range(5):
            maintainer.apply_model(
                trainer.absorb(TrainingExample(i, entities[i][1], 1))
            )
        assert maintainer.stats.reorganizations == 5

    def test_huge_alpha_never_reorganizes(self):
        maintainer = HazyEagerMaintainer(InMemoryEntityStore(), alpha=1e9)
        entities = [(i, SparseVector({0: float(i)})) for i in range(20)]
        trainer = SGDTrainer()
        maintainer.bulk_load(entities, trainer.model.copy())
        for i in range(10):
            maintainer.apply_model(
                trainer.absorb(TrainingExample(i, entities[i][1], -1 if i % 2 else 1))
            )
        assert maintainer.stats.reorganizations == 0


class TestTrackerEdgeCases:
    def test_zero_feature_norm_corpus(self):
        """All-zero feature vectors: M = 0, so only the bias delta matters."""
        tracker = WaterBandTracker(p=2.0, max_feature_norm=0.0)
        tracker.reset(LinearModel())
        band = tracker.advance(LinearModel(weights=SparseVector({0: 5.0}), bias=0.3, version=1))
        assert band.high == pytest.approx(0.3)
        assert band.low == pytest.approx(0.0)

    def test_band_after_reset_is_degenerate(self):
        tracker = WaterBandTracker(p=2.0, max_feature_norm=1.0)
        tracker.reset(LinearModel())
        tracker.advance(LinearModel(weights=SparseVector({0: 1.0}), bias=1.0, version=1))
        tracker.reset(LinearModel(weights=SparseVector({0: 1.0}), bias=1.0, version=1))
        band = tracker.band()
        assert band.low == 0.0 and band.high == 0.0
