"""Unit tests for view definitions/semantics and maintenance statistics."""

from __future__ import annotations

import pytest

from repro.core.stats import MaintenanceStatistics
from repro.core.view import ClassificationViewDefinition, view_contents
from repro.exceptions import ViewDefinitionError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector


def definition(**overrides) -> ClassificationViewDefinition:
    base = dict(
        view_name="labeled_papers",
        entities_table="papers",
        entities_key="id",
        examples_table="example_papers",
        examples_key="id",
        examples_label="label",
        feature_function="tf_bag_of_words",
    )
    base.update(overrides)
    return ClassificationViewDefinition(**base)


class TestViewDefinition:
    def test_valid_definition(self):
        assert definition().view_name == "labeled_papers"

    def test_missing_name_rejected(self):
        with pytest.raises(ViewDefinitionError):
            definition(view_name="")

    def test_missing_entities_rejected(self):
        with pytest.raises(ViewDefinitionError):
            definition(entities_table="")
        with pytest.raises(ViewDefinitionError):
            definition(entities_key="")

    def test_missing_examples_rejected(self):
        with pytest.raises(ViewDefinitionError):
            definition(examples_label="")

    def test_missing_feature_function_rejected(self):
        with pytest.raises(ViewDefinitionError):
            definition(feature_function="")

    def test_unsupported_method_rejected(self):
        with pytest.raises(ViewDefinitionError):
            definition(method="random_forest")

    def test_supported_methods_map_to_losses(self):
        assert definition(method="SVM").loss_name() == "svm"
        assert definition(method="ridge_regression").loss_name() == "ridge"
        assert definition(method="logistic").loss_name() == "logistic"
        assert definition().loss_name() is None


class TestViewContents:
    def test_semantics_follow_sign_rule(self, simple_model, example_paper_vectors):
        entities = [(name, vector) for name, vector in example_paper_vectors.items()]
        contents = view_contents(entities, simple_model)
        assert contents == {"P1": 1, "P2": -1, "P3": 1, "P4": -1, "P5": -1}

    def test_empty_entities(self, simple_model):
        assert view_contents([], simple_model) == {}

    def test_zero_model_labels_everything_positive(self):
        entities = [(1, SparseVector({0: -5.0})), (2, SparseVector({0: 5.0}))]
        assert view_contents(entities, LinearModel()) == {1: 1, 2: 1}


class TestMaintenanceStatistics:
    def test_record_update_accumulates(self):
        stats = MaintenanceStatistics()
        stats.record_update(10, 2, 0.5)
        stats.record_update(5, 1, 0.25)
        assert stats.updates == 2
        assert stats.tuples_reclassified == 15
        assert stats.labels_changed == 3
        assert stats.simulated_update_seconds == pytest.approx(0.75)

    def test_band_history_and_average(self):
        stats = MaintenanceStatistics()
        stats.record_band(10, 0.5)
        stats.record_band(20, 0.7)
        assert stats.average_band_size() == pytest.approx(15.0)
        assert stats.band_width_history == [0.5, 0.7]

    def test_average_band_size_empty(self):
        assert MaintenanceStatistics().average_band_size() == 0.0

    def test_read_counters(self):
        stats = MaintenanceStatistics()
        stats.record_single_read(0.1)
        stats.record_all_members(100, 0.4)
        assert stats.single_reads == 1
        assert stats.all_member_reads == 1
        assert stats.tuples_scanned_for_reads == 100
        assert stats.simulated_read_seconds == pytest.approx(0.5)

    def test_total_simulated_seconds(self):
        stats = MaintenanceStatistics()
        stats.record_update(1, 0, 1.0)
        stats.record_reorganization(2.0)
        stats.record_single_read(0.5)
        assert stats.total_simulated_seconds() == pytest.approx(3.5)

    def test_as_dict_contains_key_counters(self):
        stats = MaintenanceStatistics()
        stats.record_update(1, 1, 0.1)
        summary = stats.as_dict()
        assert summary["updates"] == 1
        assert "average_band_size" in summary
