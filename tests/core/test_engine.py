"""End-to-end tests of the HazyEngine through the SQL interface (paper §2.1)."""

from __future__ import annotations

import pytest

from repro.core.engine import HazyEngine
from repro.core.view import ClassificationViewDefinition
from repro.db.database import Database
from repro.exceptions import ConfigurationError, ViewDefinitionError
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = """
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
ENTITIES FROM Papers KEY id
LABELS FROM Paper_Area LABEL label
EXAMPLES FROM Example_Papers KEY id LABEL label
FEATURE FUNCTION tf_bag_of_words
USING SVM
"""


def build_database(paper_count: int = 80, seed: int = 13) -> tuple[Database, list]:
    """A database with papers, a labels table, and an (empty) examples table."""
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    generator = SparseCorpusGenerator(
        vocabulary_size=250, nonzeros_per_document=8, positive_fraction=0.4, seed=seed
    )
    documents = generator.generate_list(paper_count)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    return db, documents


class TestEngineConfiguration:
    def test_invalid_architecture(self):
        with pytest.raises(ConfigurationError):
            HazyEngine(Database(), architecture="tape")

    def test_invalid_strategy_and_approach(self):
        with pytest.raises(ConfigurationError):
            HazyEngine(Database(), strategy="psychic")
        with pytest.raises(ConfigurationError):
            HazyEngine(Database(), approach="sometimes")

    def test_unknown_view_lookup(self):
        engine = HazyEngine(Database())
        with pytest.raises(ViewDefinitionError):
            engine.view("missing")


class TestCreateClassificationView:
    def test_ddl_creates_and_registers_view(self):
        db, _ = build_database()
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        assert "labeled_papers" in engine.views
        assert db.catalog.has_classification_view("Labeled_Papers")

    def test_duplicate_view_rejected(self):
        db, _ = build_database()
        HazyEngine(db)
        db.execute(VIEW_DDL)
        with pytest.raises(ViewDefinitionError):
            db.execute(VIEW_DDL)

    def test_view_is_populated_with_every_entity(self):
        db, documents = build_database()
        HazyEngine(db)
        db.execute(VIEW_DDL)
        assert db.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar() == len(documents)

    def test_missing_entity_key_column_rejected(self):
        db, _ = build_database()
        engine = HazyEngine(db)
        definition = ClassificationViewDefinition(
            view_name="v",
            entities_table="papers",
            entities_key="missing_column",
            examples_table="example_papers",
            examples_key="id",
            examples_label="label",
            feature_function="tf_bag_of_words",
        )
        with pytest.raises(ViewDefinitionError):
            engine.create_view(definition)

    @pytest.mark.parametrize("architecture", ["mainmemory", "ondisk", "hybrid"])
    def test_all_architectures_work_through_sql(self, architecture):
        db, documents = build_database(paper_count=50)
        HazyEngine(db, architecture=architecture)
        db.execute(VIEW_DDL)
        db.execute("INSERT INTO example_papers (id, label) VALUES (?, ?)", (documents[0].entity_id, "database"))
        rows = db.execute("SELECT * FROM Labeled_Papers WHERE class = 'database'").rows
        assert isinstance(rows, list)


class TestIncrementalMaintenanceThroughSQL:
    def test_training_examples_update_the_model(self):
        db, documents = build_database()
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        version_before = view.model.version
        positives = [doc for doc in documents if doc.label == 1][:5]
        negatives = [doc for doc in documents if doc.label == -1][:5]
        for doc in positives:
            db.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, 'database')", (doc.entity_id,)
            )
        for doc in negatives:
            db.execute(
                "INSERT INTO example_papers (id, label) VALUES (?, 'other')", (doc.entity_id,)
            )
        assert view.model.version == version_before + 10
        assert view.maintainer.stats.updates == 10

    def test_view_labels_track_the_current_model(self):
        db, documents = build_database(paper_count=60)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:30]:
            label = "database" if doc.label == 1 else "other"
            view.insert_example(doc.entity_id, label)
        for doc in documents[:20]:
            expected = view.model.predict(view.maintainer.store.get(doc.entity_id).features)
            assert view.label_of(doc.entity_id) == expected

    def test_members_and_count(self):
        db, documents = build_database(paper_count=60)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:20]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        members = view.members(1)
        assert view.count_members(1) == len(members)
        assert set(members).issubset({doc.entity_id for doc in documents})

    def test_new_entity_via_sql_insert_is_classified(self):
        db, documents = build_database(paper_count=60)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:20]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        db.execute("INSERT INTO papers (id, title) VALUES (?, ?)", (9999, "database systems query processing"))
        assert view.label_of(9999) in (1, -1)
        assert db.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar() == 61

    def test_example_for_unknown_entity_rejected(self):
        db, _ = build_database()
        HazyEngine(db)
        db.execute(VIEW_DDL)
        with pytest.raises(ViewDefinitionError):
            db.execute("INSERT INTO example_papers (id, label) VALUES (123456, 'database')")

    def test_example_delete_triggers_retraining(self):
        db, documents = build_database(paper_count=40)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:10]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        version_after_inserts = view.model.version
        db.execute("DELETE FROM example_papers WHERE id = ?", (documents[0].entity_id,))
        # Retraining from scratch resets the trainer and replays 9 examples.
        assert view.model.version == 9
        assert version_after_inserts == 10

    def test_sql_query_over_view_with_label_values(self):
        db, documents = build_database(paper_count=50)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:25]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        db_count = db.execute(
            "SELECT COUNT(*) FROM Labeled_Papers WHERE class = 'database'"
        ).scalar()
        assert db_count == view.count_members(1)

    def test_positive_label_resolved_from_labels_table(self):
        db, _ = build_database()
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        assert view.positive_label == "database"
        assert view.to_binary_label("database") == 1
        assert view.to_binary_label("other") == -1

    def test_numeric_labels_accepted_without_labels_table(self):
        db, documents = build_database()
        engine = HazyEngine(db)
        db.execute("CREATE TABLE examples2 (id integer PRIMARY KEY, label integer)")
        definition = ClassificationViewDefinition(
            view_name="numeric_view",
            entities_table="papers",
            entities_key="id",
            examples_table="examples2",
            examples_key="id",
            examples_label="label",
            feature_function="tf_bag_of_words",
        )
        view = engine.create_view(definition)
        view.insert_example(documents[0].entity_id, 1)
        view.insert_example(documents[1].entity_id, -1)
        assert view.model.version == 2

    def test_unmappable_label_raises(self):
        db, documents = build_database()
        engine = HazyEngine(db)
        db.execute("CREATE TABLE examples3 (id integer PRIMARY KEY, label text)")
        definition = ClassificationViewDefinition(
            view_name="nolabels_view",
            entities_table="papers",
            entities_key="id",
            examples_table="examples3",
            examples_key="id",
            examples_label="label",
            feature_function="tf_bag_of_words",
        )
        view = engine.create_view(definition)
        with pytest.raises(ConfigurationError):
            view.insert_example(documents[0].entity_id, "mystery")

    def test_retrain_rebuilds_consistent_view(self):
        db, documents = build_database(paper_count=50)
        engine = HazyEngine(db)
        db.execute(VIEW_DDL)
        view = engine.view("Labeled_Papers")
        for doc in documents[:20]:
            view.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
        view.retrain()
        for doc in documents[:10]:
            features = view.maintainer.store.get(doc.entity_id).features
            assert view.label_of(doc.entity_id) == view.model.predict(features)
