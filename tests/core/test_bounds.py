"""Unit tests for the low/high-water bounds (Lemma 3.1 and Eq. 2)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import WaterBand, WaterBandTracker, holder_pair_for_norm
from repro.exceptions import MaintenanceError
from repro.learn.model import LinearModel
from repro.linalg import SparseVector


class TestHolderPair:
    def test_l1_features_use_infinity_norm(self):
        p, q = holder_pair_for_norm(1.0)
        assert p == math.inf
        assert q == 1.0

    def test_l2_features_are_self_conjugate(self):
        p, q = holder_pair_for_norm(2.0)
        assert p == pytest.approx(2.0)
        assert q == pytest.approx(2.0)

    def test_invalid_norm_rejected(self):
        with pytest.raises(MaintenanceError):
            holder_pair_for_norm(0.5)


class TestWaterBand:
    def test_containment_is_inclusive(self):
        band = WaterBand(-0.5, 0.5)
        assert band.contains(-0.5)
        assert band.contains(0.5)
        assert not band.contains(0.6)

    def test_certainty_is_strict(self):
        band = WaterBand(-0.5, 0.5)
        assert band.certain_positive(0.6)
        assert not band.certain_positive(0.5)
        assert band.certain_negative(-0.6)
        assert not band.certain_negative(-0.5)

    def test_width(self):
        assert WaterBand(-0.5, 0.5).width() == pytest.approx(1.0)
        assert WaterBand(0.0, 0.0).width() == 0.0


class TestWaterBandTracker:
    def make_tracker(self, p: float = math.inf, m: float = 1.0) -> WaterBandTracker:
        tracker = WaterBandTracker(p, m)
        tracker.reset(LinearModel(weights=SparseVector({0: 1.0}), bias=0.0, version=0))
        return tracker

    def test_reset_required_before_use(self):
        tracker = WaterBandTracker(math.inf, 1.0)
        with pytest.raises(MaintenanceError):
            _ = tracker.stored_model

    def test_negative_feature_norm_rejected(self):
        with pytest.raises(MaintenanceError):
            WaterBandTracker(math.inf, -1.0)

    def test_band_is_degenerate_when_model_unchanged(self):
        tracker = self.make_tracker()
        band = tracker.advance(tracker.stored_model.copy())
        assert band.low == 0.0
        assert band.high == 0.0

    def test_step_bounds_match_lemma_formula(self):
        tracker = self.make_tracker(p=math.inf, m=2.0)
        current = LinearModel(weights=SparseVector({0: 1.3, 5: -0.2}), bias=0.4, version=1)
        low, high = tracker.step_bounds(current)
        # delta_w = {0: 0.3, 5: -0.2}; ||delta||_inf = 0.3; delta_b = 0.4
        assert high == pytest.approx(2.0 * 0.3 + 0.4)
        assert low == pytest.approx(-2.0 * 0.3 + 0.4)

    def test_step_bounds_with_l2_pair(self):
        tracker = WaterBandTracker(2.0, 1.5)
        tracker.reset(LinearModel())
        current = LinearModel(weights=SparseVector({0: 3.0, 1: 4.0}), bias=-1.0, version=1)
        low, high = tracker.step_bounds(current)
        assert high == pytest.approx(1.5 * 5.0 - 1.0)
        assert low == pytest.approx(-1.5 * 5.0 - 1.0)

    def test_cumulative_band_is_monotone(self):
        tracker = self.make_tracker()
        first = tracker.advance(LinearModel(SparseVector({0: 1.1}), 0.05, 1))
        second = tracker.advance(LinearModel(SparseVector({0: 1.05}), 0.02, 2))
        assert second.low <= first.low
        assert second.high >= first.high

    def test_band_always_includes_zero(self):
        tracker = self.make_tracker()
        band = tracker.advance(LinearModel(SparseVector({0: 2.0}), 5.0, 1))
        assert band.low <= 0.0 <= band.high

    def test_observe_max_feature_norm_only_grows(self):
        tracker = self.make_tracker(m=1.0)
        tracker.observe_max_feature_norm(0.5)
        assert tracker.max_feature_norm == 1.0
        tracker.observe_max_feature_norm(2.5)
        assert tracker.max_feature_norm == 2.5

    def test_lemma_soundness_on_example(self):
        """Entities outside the band keep the stored-model label under the new model."""
        stored = LinearModel(SparseVector({0: 1.0, 1: -0.5}), 0.1, 0)
        current = LinearModel(SparseVector({0: 1.2, 1: -0.4}), 0.15, 1)
        entities = [
            SparseVector({0: 0.6, 1: 0.4}),
            SparseVector({0: 0.1, 1: 0.9}),
            SparseVector({0: 0.9}),
            SparseVector({1: 1.0}),
        ]
        m = max(vector.norm(1) for vector in entities)
        tracker = WaterBandTracker(math.inf, m)
        tracker.reset(stored)
        band = tracker.advance(current)
        for vector in entities:
            eps = stored.margin(vector)
            if band.certain_positive(eps):
                assert current.predict(vector) == 1
            if band.certain_negative(eps):
                assert current.predict(vector) == -1

    def test_non_monotone_band_covers_last_two_rounds(self):
        tracker = self.make_tracker()
        previous = LinearModel(SparseVector({0: 1.5}), 0.2, 1)
        current = LinearModel(SparseVector({0: 0.7}), -0.1, 2)
        band = tracker.non_monotone_band(previous, current)
        p_low, p_high = tracker.step_bounds(previous)
        c_low, c_high = tracker.step_bounds(current)
        assert band.low == pytest.approx(min(p_low, c_low))
        assert band.high == pytest.approx(max(p_high, c_high))
