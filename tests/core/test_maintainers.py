"""Tests for the four maintenance strategies, including cross-strategy consistency."""

from __future__ import annotations

import random

import pytest

from repro.core.maintainers import (
    HazyEagerMaintainer,
    HazyLazyMaintainer,
    NaiveEagerMaintainer,
    NaiveLazyMaintainer,
)
from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.core.view import view_contents
from repro.db.buffer_pool import BufferPool, IOStatistics
from repro.db.costmodel import CostModel
from repro.exceptions import MaintenanceError
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.linalg import SparseVector
from repro.workloads.synth_text import SparseCorpusGenerator

MAINTAINER_CLASSES = {
    "naive-eager": NaiveEagerMaintainer,
    "naive-lazy": NaiveLazyMaintainer,
    "hazy-eager": HazyEagerMaintainer,
    "hazy-lazy": HazyLazyMaintainer,
}

STORE_KINDS = ["mainmemory", "ondisk", "hybrid"]


def make_store(kind: str):
    if kind == "mainmemory":
        return InMemoryEntityStore(feature_norm_q=1.0)
    pool = BufferPool(CostModel(), capacity_pages=32, statistics=IOStatistics())
    if kind == "ondisk":
        return OnDiskEntityStore(pool=pool, feature_norm_q=1.0)
    return HybridEntityStore(pool=pool, feature_norm_q=1.0, buffer_fraction=0.05)


def corpus(count: int = 150, seed: int = 3):
    generator = SparseCorpusGenerator(
        vocabulary_size=300, nonzeros_per_document=8, positive_fraction=0.35, seed=seed
    )
    return generator.generate_list(count)


def run_update_stream(maintainer, trainer, documents, updates: int, seed: int = 1):
    """Feed ``updates`` training examples through trainer + maintainer."""
    rng = random.Random(seed)
    for _ in range(updates):
        doc = documents[rng.randrange(len(documents))]
        model = trainer.absorb(TrainingExample(doc.entity_id, doc.features, doc.label))
        maintainer.apply_model(model)
    return trainer.model


class TestLifecycleGuards:
    @pytest.mark.parametrize("name", list(MAINTAINER_CLASSES))
    def test_operations_require_bulk_load(self, name):
        maintainer = MAINTAINER_CLASSES[name](make_store("mainmemory"))
        with pytest.raises(MaintenanceError):
            maintainer.apply_model(SGDTrainer().model)
        with pytest.raises(MaintenanceError):
            maintainer.read_single(1)
        with pytest.raises(MaintenanceError):
            maintainer.read_all_members()
        with pytest.raises(MaintenanceError):
            maintainer.add_entity(1, SparseVector({0: 1.0}))

    def test_repr_mentions_counts(self):
        maintainer = NaiveEagerMaintainer(make_store("mainmemory"))
        maintainer.bulk_load([(1, SparseVector({0: 1.0}))], SGDTrainer().model)
        assert "entities=1" in repr(maintainer)


@pytest.mark.parametrize("name", list(MAINTAINER_CLASSES))
class TestAgainstDeclarativeSemantics:
    """Every strategy must agree with the paper's view semantics (view_contents)."""

    def test_matches_oracle_after_update_stream(self, name):
        documents = corpus(120)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=5)
        maintainer = MAINTAINER_CLASSES[name](make_store("mainmemory"))
        maintainer.bulk_load(entities, trainer.model.copy())
        final_model = run_update_stream(maintainer, trainer, documents, updates=60)
        oracle = view_contents(entities, final_model)
        for entity_id, expected in oracle.items():
            assert maintainer.read_single(entity_id) == expected

    def test_all_members_matches_oracle(self, name):
        documents = corpus(100, seed=11)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=2)
        maintainer = MAINTAINER_CLASSES[name](make_store("mainmemory"))
        maintainer.bulk_load(entities, trainer.model.copy())
        final_model = run_update_stream(maintainer, trainer, documents, updates=40, seed=9)
        oracle = view_contents(entities, final_model)
        expected_positive = {eid for eid, label in oracle.items() if label == 1}
        expected_negative = {eid for eid, label in oracle.items() if label == -1}
        assert set(maintainer.read_all_members(1)) == expected_positive
        assert set(maintainer.read_all_members(-1)) == expected_negative

    def test_new_entities_are_classified_and_maintained(self, name):
        documents = corpus(80, seed=21)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=8)
        maintainer = MAINTAINER_CLASSES[name](make_store("mainmemory"))
        maintainer.bulk_load(entities, trainer.model.copy())
        run_update_stream(maintainer, trainer, documents, updates=25, seed=4)
        # A new entity arrives mid-stream.
        newcomer = corpus(5, seed=99)[0]
        new_id = 10_000
        maintainer.add_entity(new_id, newcomer.features)
        final_model = run_update_stream(maintainer, trainer, documents, updates=25, seed=6)
        assert maintainer.read_single(new_id) == final_model.predict(newcomer.features)


@pytest.mark.parametrize("kind", STORE_KINDS)
class TestArchitectureConsistency:
    """The Hazy eager strategy gives identical view contents on every architecture."""

    def test_hazy_eager_matches_naive_eager(self, kind):
        documents = corpus(100, seed=31)
        entities = [(doc.entity_id, doc.features) for doc in documents]

        naive_trainer = SGDTrainer(seed=7)
        naive = NaiveEagerMaintainer(make_store("mainmemory"))
        naive.bulk_load(entities, naive_trainer.model.copy())
        run_update_stream(naive, naive_trainer, documents, updates=50, seed=13)

        hazy_trainer = SGDTrainer(seed=7)
        hazy = HazyEagerMaintainer(make_store(kind))
        hazy.bulk_load(entities, hazy_trainer.model.copy())
        run_update_stream(hazy, hazy_trainer, documents, updates=50, seed=13)

        assert hazy.contents() == naive.contents()

    def test_hazy_lazy_matches_naive_eager(self, kind):
        documents = corpus(100, seed=41)
        entities = [(doc.entity_id, doc.features) for doc in documents]

        naive_trainer = SGDTrainer(seed=17)
        naive = NaiveEagerMaintainer(make_store("mainmemory"))
        naive.bulk_load(entities, naive_trainer.model.copy())
        run_update_stream(naive, naive_trainer, documents, updates=40, seed=23)

        lazy_trainer = SGDTrainer(seed=17)
        lazy = HazyLazyMaintainer(make_store(kind))
        lazy.bulk_load(entities, lazy_trainer.model.copy())
        run_update_stream(lazy, lazy_trainer, documents, updates=40, seed=23)

        assert lazy.contents() == naive.contents()


class TestHazyEagerBehaviour:
    def test_incremental_step_touches_fewer_tuples_than_naive(self):
        documents = corpus(200, seed=51)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=3)
        # Warm the model first so per-update deltas are small.
        warm = [
            TrainingExample(doc.entity_id, doc.features, doc.label)
            for doc in random.Random(5).sample(documents, 120)
        ]
        for example in warm:
            trainer.absorb(example)
        hazy = HazyEagerMaintainer(make_store("mainmemory"))
        hazy.bulk_load(entities, trainer.model.copy())
        run_update_stream(hazy, trainer, documents, updates=30, seed=29)
        naive_tuples = 30 * len(entities)
        assert hazy.stats.tuples_reclassified < naive_tuples

    def test_reorganization_triggered_by_accumulated_waste(self):
        documents = corpus(80, seed=61)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=19, learning_rate=1.0, decay=0.0)
        hazy = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=0.05)
        hazy.bulk_load(entities, trainer.model.copy())
        run_update_stream(hazy, trainer, documents, updates=60, seed=37)
        assert hazy.stats.reorganizations >= 1
        assert hazy.skiing.reorganizations == hazy.stats.reorganizations

    def test_band_size_history_recorded(self):
        documents = corpus(60, seed=71)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=23)
        hazy = HazyEagerMaintainer(make_store("mainmemory"))
        hazy.bulk_load(entities, trainer.model.copy())
        run_update_stream(hazy, trainer, documents, updates=10, seed=41)
        assert len(hazy.stats.band_size_history) == 10
        assert hazy.band_tuple_count() >= 0

    def test_read_single_uses_epsmap_on_hybrid(self):
        documents = corpus(120, seed=81)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=29)
        # Warm the model before the bulk load so the water band stays narrow
        # and most single-entity reads can be answered from the eps-map alone.
        warm = [
            TrainingExample(doc.entity_id, doc.features, doc.label)
            for doc in random.Random(3).sample(documents, 80)
        ]
        for example in warm:
            trainer.absorb(example)
        hazy = HazyEagerMaintainer(make_store("hybrid"))
        hazy.bulk_load(entities, trainer.model.copy())
        run_update_stream(hazy, trainer, documents, updates=3, seed=43)
        for doc in documents[:50]:
            hazy.read_single(doc.entity_id)
        assert hazy.stats.epsmap_hits > 0


class TestHazyLazyBehaviour:
    def test_updates_do_not_touch_tuples(self):
        documents = corpus(80, seed=91)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=31)
        lazy = HazyLazyMaintainer(make_store("mainmemory"))
        lazy.bulk_load(entities, trainer.model.copy())
        run_update_stream(lazy, trainer, documents, updates=20, seed=47)
        assert lazy.stats.tuples_reclassified == 0

    def test_all_members_scans_fewer_tuples_than_naive_lazy(self):
        documents = corpus(200, seed=95)
        entities = [(doc.entity_id, doc.features) for doc in documents]

        def warmed(maintainer_cls):
            trainer = SGDTrainer(seed=37)
            warm = [
                TrainingExample(doc.entity_id, doc.features, doc.label)
                for doc in random.Random(7).sample(documents, 120)
            ]
            for example in warm:
                trainer.absorb(example)
            maintainer = maintainer_cls(make_store("mainmemory"))
            maintainer.bulk_load(entities, trainer.model.copy())
            run_update_stream(maintainer, trainer, documents, updates=5, seed=53)
            maintainer.read_all_members(1)
            return maintainer

        hazy = warmed(HazyLazyMaintainer)
        naive = warmed(NaiveLazyMaintainer)
        assert hazy.stats.tuples_scanned_for_reads < naive.stats.tuples_scanned_for_reads

    def test_waste_accumulates_and_triggers_reorganization(self):
        documents = corpus(100, seed=97)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=41)
        lazy = HazyLazyMaintainer(InMemoryEntityStore(feature_norm_q=1.0), alpha=0.01)
        lazy.bulk_load(entities, trainer.model.copy())
        for _ in range(15):
            run_update_stream(lazy, trainer, documents, updates=3, seed=59)
            lazy.read_all_members(1)
        assert lazy.stats.reorganizations >= 1

    def test_negative_class_query(self):
        documents = corpus(80, seed=99)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=43)
        lazy = HazyLazyMaintainer(make_store("mainmemory"))
        lazy.bulk_load(entities, trainer.model.copy())
        final_model = run_update_stream(lazy, trainer, documents, updates=20, seed=61)
        expected = {eid for eid, label in view_contents(entities, final_model).items() if label == -1}
        assert set(lazy.read_all_members(-1)) == expected


class TestNaiveBehaviour:
    def test_naive_eager_touches_every_tuple_per_update(self):
        documents = corpus(60, seed=101)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=47)
        naive = NaiveEagerMaintainer(make_store("mainmemory"))
        naive.bulk_load(entities, trainer.model.copy())
        run_update_stream(naive, trainer, documents, updates=10, seed=67)
        assert naive.stats.tuples_reclassified == 10 * len(entities)

    def test_naive_lazy_update_is_free(self):
        documents = corpus(60, seed=103)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=53)
        naive = NaiveLazyMaintainer(make_store("mainmemory"))
        naive.bulk_load(entities, trainer.model.copy())
        run_update_stream(naive, trainer, documents, updates=10, seed=71)
        assert naive.stats.simulated_update_seconds == 0.0

    def test_single_reads_are_counted(self):
        documents = corpus(30, seed=105)
        entities = [(doc.entity_id, doc.features) for doc in documents]
        trainer = SGDTrainer(seed=59)
        naive = NaiveEagerMaintainer(make_store("mainmemory"))
        naive.bulk_load(entities, trainer.model.copy())
        for doc in documents[:10]:
            naive.read_single(doc.entity_id)
        assert naive.stats.single_reads == 10
