"""Tests for incrementally maintained kernel classification views (Appendix B.5.2)."""

from __future__ import annotations

import math

import pytest

from repro.core.kernel_view import KernelHazyEagerMaintainer, KernelNaiveEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.exceptions import MaintenanceError
from repro.learn.kernel_model import KernelPerceptronTrainer
from repro.learn.kernels import GaussianKernel
from repro.learn.sgd import TrainingExample
from repro.linalg import SparseVector


def ring_problem() -> tuple[list[tuple[int, SparseVector]], dict[int, int]]:
    """A center-vs-ring layout that is not linearly separable."""
    entities: list[tuple[int, SparseVector]] = []
    labels: dict[int, int] = {}
    next_id = 0
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            entities.append((next_id, SparseVector({0: 0.1 * i, 1: 0.1 * j})))
            labels[next_id] = 1
            next_id += 1
    for k in range(10):
        angle = 2 * math.pi * k / 10
        entities.append(
            (next_id, SparseVector({0: 1.6 * math.cos(angle), 1: 1.6 * math.sin(angle)}))
        )
        labels[next_id] = -1
        next_id += 1
    return entities, labels


def train_and_maintain(maintainer_cls, epochs: int = 6, alpha: float = 1.0):
    entities, labels = ring_problem()
    trainer = KernelPerceptronTrainer(kernel=GaussianKernel(gamma=1.0))
    kwargs = {"alpha": alpha} if maintainer_cls is KernelHazyEagerMaintainer else {}
    maintainer = maintainer_cls(InMemoryEntityStore(feature_norm_q=2.0), **kwargs)
    maintainer.bulk_load(entities, trainer.model.copy())
    for _ in range(epochs):
        for entity_id, features in entities:
            model = trainer.absorb(TrainingExample(entity_id, features, labels[entity_id]))
            maintainer.apply_model(model)
    return entities, labels, trainer, maintainer


class TestLifecycle:
    def test_operations_require_bulk_load(self):
        maintainer = KernelHazyEagerMaintainer(InMemoryEntityStore())
        with pytest.raises(MaintenanceError):
            maintainer.read_single(1)
        with pytest.raises(MaintenanceError):
            maintainer.apply_model(KernelPerceptronTrainer().model)

    def test_bulk_load_with_empty_model_labels_by_bias_sign(self):
        entities, _ = ring_problem()
        maintainer = KernelNaiveEagerMaintainer(InMemoryEntityStore())
        maintainer.bulk_load(entities, KernelPerceptronTrainer().model)
        # Zero model: every score is 0, sign(0) = +1.
        assert all(label == 1 for label in maintainer.contents().values())


@pytest.mark.parametrize("maintainer_cls", [KernelNaiveEagerMaintainer, KernelHazyEagerMaintainer])
class TestConsistencyWithKernelModel:
    def test_view_matches_direct_kernel_predictions(self, maintainer_cls):
        entities, _, trainer, maintainer = train_and_maintain(maintainer_cls)
        for entity_id, features in entities:
            assert maintainer.read_single(entity_id) == trainer.model.predict(features)

    def test_all_members_matches_model(self, maintainer_cls):
        entities, _, trainer, maintainer = train_and_maintain(maintainer_cls)
        expected = {eid for eid, features in entities if trainer.model.predict(features) == 1}
        assert set(maintainer.read_all_members(1)) == expected

    def test_nonlinear_problem_is_actually_learned(self, maintainer_cls):
        entities, labels, _, maintainer = train_and_maintain(maintainer_cls)
        correct = sum(
            1 for entity_id, _ in entities if maintainer.read_single(entity_id) == labels[entity_id]
        )
        assert correct >= len(entities) - 2


class TestHazyKernelBehaviour:
    def test_band_tracks_coefficient_delta(self):
        entities, labels, trainer, maintainer = train_and_maintain(
            KernelHazyEagerMaintainer, epochs=1, alpha=1e9
        )
        # With a huge alpha the maintainer never reorganizes, so the band keeps
        # growing with the l1 distance between the stored and current models.
        assert maintainer.band.high >= 0.0
        assert maintainer.band.low <= 0.0
        assert maintainer.stats.reorganizations == 0

    def test_small_alpha_triggers_reorganizations(self):
        _, _, _, maintainer = train_and_maintain(KernelHazyEagerMaintainer, epochs=2, alpha=0.01)
        assert maintainer.stats.reorganizations >= 1

    def test_hazy_touches_fewer_tuples_when_model_is_stable(self):
        entities, labels = ring_problem()
        trainer = KernelPerceptronTrainer(kernel=GaussianKernel(gamma=1.0))
        # Train to convergence first.
        for _ in range(8):
            for entity_id, features in entities:
                trainer.absorb(TrainingExample(entity_id, features, labels[entity_id]))
        hazy = KernelHazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=2.0))
        naive = KernelNaiveEagerMaintainer(InMemoryEntityStore(feature_norm_q=2.0))
        for maintainer in (hazy, naive):
            maintainer.bulk_load(entities, trainer.model.copy())
        # Converged model: further examples produce no mistakes, hence no model
        # change, so the Hazy band stays degenerate and nothing is rescored.
        for entity_id, features in entities:
            model = trainer.absorb(TrainingExample(entity_id, features, labels[entity_id]))
            hazy.apply_model(model)
            naive.apply_model(model)
        assert hazy.stats.tuples_reclassified < naive.stats.tuples_reclassified
        assert hazy.contents() == naive.contents()
