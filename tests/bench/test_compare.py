"""Unit tests for the benchmark-trajectory comparison helper."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_reports, flatten_metrics, main


def report(**figures) -> dict:
    return {"generated_at": "2026-01-01T00:00:00Z", "figures": figures}


def figure(rows) -> dict:
    return {"title": "t", "elapsed_seconds": 12.5, "rows": rows}


BASELINE = report(
    fig4a=figure([{"cell": "mm/hazy", "simulated_ops_per_s": 100.0, "wall_ops_per_s": 5.0}]),
    fig4b=figure([{"scans_per_s": 4.0, "snapshot_consistent": True, "avg_read_batch": 6.0}]),
)


class TestFlatten:
    def test_flattens_numeric_cells(self):
        metrics = flatten_metrics(BASELINE)
        assert metrics == {
            "fig4a[0].simulated_ops_per_s": 100.0,
            "fig4b[0].scans_per_s": 4.0,
        }

    def test_drops_wall_clock_booleans_strings_and_timing_artifacts(self):
        metrics = flatten_metrics(BASELINE)
        assert not any("wall" in name or "elapsed" in name for name in metrics)
        assert "fig4b[0].snapshot_consistent" not in metrics
        assert "fig4b[0].avg_read_batch" not in metrics  # batcher timing artifact
        assert "fig4a[0].cell" not in metrics


class TestCompare:
    def test_identical_reports_pass(self):
        assert compare_reports(BASELINE, json.loads(json.dumps(BASELINE))) == []

    def test_drift_within_tolerance_passes(self):
        current = report(
            fig4a=figure([{"cell": "mm/hazy", "simulated_ops_per_s": 115.0}]),
            fig4b=figure([{"scans_per_s": 4.5}]),
        )
        assert compare_reports(BASELINE, current, tolerance=0.2) == []

    def test_regression_beyond_tolerance_fails(self):
        current = report(
            fig4a=figure([{"cell": "mm/hazy", "simulated_ops_per_s": 70.0}]),
            fig4b=figure([{"scans_per_s": 4.0}]),
        )
        deviations = compare_reports(BASELINE, current, tolerance=0.2)
        assert [d.metric for d in deviations] == ["fig4a[0].simulated_ops_per_s"]
        assert deviations[0].relative_change == pytest.approx(-0.3)

    def test_improvement_beyond_tolerance_also_flags(self):
        current = report(
            fig4a=figure([{"cell": "mm/hazy", "simulated_ops_per_s": 200.0}]),
            fig4b=figure([{"scans_per_s": 4.0}]),
        )
        assert len(compare_reports(BASELINE, current, tolerance=0.2)) == 1

    def test_missing_metric_is_a_deviation(self):
        current = report(fig4b=figure([{"scans_per_s": 4.0}]))
        deviations = compare_reports(BASELINE, current)
        assert [d.metric for d in deviations] == ["fig4a[0].simulated_ops_per_s"]
        assert "missing" in deviations[0].describe()

    def test_new_metric_does_not_fail(self):
        current = report(
            fig4a=figure(
                [{"cell": "mm/hazy", "simulated_ops_per_s": 100.0, "extra_metric": 1.0}]
            ),
            fig4b=figure([{"scans_per_s": 4.0}]),
        )
        assert compare_reports(BASELINE, current) == []

    def test_zero_baseline_does_not_divide_by_zero(self):
        base = report(f=figure([{"metric": 0.0}]))
        current = report(f=figure([{"metric": 0.5}]))
        deviations = compare_reports(base, current)
        assert len(deviations) == 1


class TestCli:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_cli_ok(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        current = self.write(tmp_path, "current.json", BASELINE)
        assert main([base, current]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_regression_exits_nonzero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", BASELINE)
        current = self.write(
            tmp_path,
            "current.json",
            report(
                fig4a=figure([{"cell": "mm/hazy", "simulated_ops_per_s": 10.0}]),
                fig4b=figure([{"scans_per_s": 4.0}]),
            ),
        )
        assert main([base, current]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_rejects_non_report(self, tmp_path):
        bad = self.write(tmp_path, "bad.json", {"rows": []})
        good = self.write(tmp_path, "good.json", BASELINE)
        with pytest.raises(SystemExit, match="figures"):
            main([bad, good])
