"""Tests for the benchmark harness and table rendering."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentResult,
    build_maintained_view,
    build_maintainer,
    build_store,
    run_eager_update_experiment,
    run_lazy_all_members_experiment,
    run_single_entity_experiment,
)
from repro.bench.reporting import format_bytes, format_table, speedup
from repro.core.maintainers import HazyEagerMaintainer, NaiveLazyMaintainer
from repro.core.stores import HybridEntityStore, InMemoryEntityStore, OnDiskEntityStore
from repro.exceptions import ConfigurationError
from repro.workloads import dblife_like


@pytest.fixture(scope="module")
def dataset():
    return dblife_like(scale=0.12, seed=3)


class TestBuilders:
    def test_build_store_variants(self):
        assert isinstance(build_store("mainmemory"), InMemoryEntityStore)
        assert isinstance(build_store("ondisk"), OnDiskEntityStore)
        assert isinstance(build_store("hybrid"), HybridEntityStore)

    def test_build_store_unknown(self):
        with pytest.raises(ConfigurationError):
            build_store("floppy")

    def test_build_maintainer_variants(self):
        store = build_store("mainmemory")
        assert isinstance(build_maintainer("hazy", "eager", store), HazyEagerMaintainer)
        assert isinstance(build_maintainer("naive", "lazy", build_store("mainmemory")), NaiveLazyMaintainer)

    def test_build_maintainer_unknown(self):
        with pytest.raises(ConfigurationError):
            build_maintainer("psychic", "eager", build_store("mainmemory"))

    def test_build_maintained_view_bulk_loads(self, dataset):
        view = build_maintained_view(dataset, "mainmemory", "hazy", "eager")
        assert view.store.count() == dataset.entity_count()
        assert view.strategy == "hazy"


class TestExperimentResult:
    def test_throughput_computation(self):
        result = ExperimentResult("x", operations=100, wall_seconds=2.0, simulated_seconds=4.0)
        assert result.simulated_ops_per_second == pytest.approx(25.0)
        assert result.wall_ops_per_second == pytest.approx(50.0)

    def test_zero_cost_gives_infinite_rate(self):
        result = ExperimentResult("x", operations=10, wall_seconds=0.0, simulated_seconds=0.0)
        assert result.simulated_ops_per_second == float("inf")

    def test_as_row_contains_detail(self):
        result = ExperimentResult("x", 10, 1.0, 1.0, detail={"reorganizations": 2.0})
        row = result.as_row()
        assert row["cell"] == "x"
        assert row["reorganizations"] == 2.0


class TestExperiments:
    def test_eager_update_experiment_runs(self, dataset):
        result = run_eager_update_experiment(dataset, "mainmemory", "hazy", warmup=40, timed=20)
        assert result.operations == 20
        assert result.simulated_seconds > 0.0
        assert result.wall_seconds > 0.0

    def test_hazy_reclassifies_fewer_tuples_than_naive(self, dataset):
        # At this tiny scale the absolute throughputs are dominated by fixed
        # per-update costs, so the robust claim is about work: Hazy touches far
        # fewer tuples per update than the naive full rescan.
        naive = run_eager_update_experiment(dataset, "mainmemory", "naive", warmup=60, timed=30)
        hazy = run_eager_update_experiment(dataset, "mainmemory", "hazy", warmup=60, timed=30)
        assert hazy.detail["tuples_reclassified"] < naive.detail["tuples_reclassified"]

    def test_ondisk_slower_than_mainmemory_for_naive(self, dataset):
        ondisk = run_eager_update_experiment(dataset, "ondisk", "naive", warmup=30, timed=10)
        mainmemory = run_eager_update_experiment(dataset, "mainmemory", "naive", warmup=30, timed=10)
        assert ondisk.simulated_ops_per_second < mainmemory.simulated_ops_per_second

    def test_lazy_all_members_experiment_runs(self, dataset):
        result = run_lazy_all_members_experiment(
            dataset, "mainmemory", "hazy", warmup=40, scans=4, updates_between_scans=2
        )
        assert result.operations == 4
        assert result.detail["tuples_scanned"] >= 0

    def test_hazy_lazy_scans_fewer_tuples(self, dataset):
        naive = run_lazy_all_members_experiment(
            dataset, "mainmemory", "naive", warmup=40, scans=4, updates_between_scans=2
        )
        hazy = run_lazy_all_members_experiment(
            dataset, "mainmemory", "hazy", warmup=40, scans=4, updates_between_scans=2
        )
        assert hazy.detail["tuples_scanned"] < naive.detail["tuples_scanned"]

    def test_single_entity_experiment_runs(self, dataset):
        result = run_single_entity_experiment(
            dataset, "hybrid", "hazy", "eager", warmup=40, reads=200
        )
        assert result.operations == 200
        assert "epsmap_hits" in result.detail

    def test_hybrid_reads_faster_than_ondisk(self, dataset):
        ondisk = run_single_entity_experiment(dataset, "ondisk", "hazy", "eager", warmup=40, reads=150)
        hybrid = run_single_entity_experiment(dataset, "hybrid", "hazy", "eager", warmup=40, reads=150)
        assert hybrid.simulated_ops_per_second > ondisk.simulated_ops_per_second


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_rendering(self):
        text = format_table([{"value": 0.000123}, {"value": 12345.6}, {"value": 0.5}])
        assert "0.000123" in text
        assert "0.50" in text

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(5 * 1024 * 1024) == "5.0MB"
        assert format_bytes(3 * 1024**3) == "3.0GB"
