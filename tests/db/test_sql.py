"""Unit tests for the SQL lexer, parser and executor."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.sql.ast import (
    PLACEHOLDER,
    Comparison,
    CreateClassificationView,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
)
from repro.db.sql.lexer import TokenType, tokenize
from repro.db.sql.parser import parse
from repro.exceptions import SQLExecutionError, SQLSyntaxError


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT id FROM papers")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[-1].type is TokenType.END

    def test_numbers(self):
        tokens = tokenize("42 -3.5 1e-4")
        assert [t.value for t in tokens[:-1]] == ["42", "-3.5", "1e-4"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_strings_with_escaped_quotes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("a >= 1 AND b <> 2")
        operators = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert operators == [">=", "<>"]

    def test_placeholders(self):
        tokens = tokenize("VALUES (?, ?)")
        assert sum(1 for t in tokens if t.type is TokenType.PLACEHOLDER) == 2

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT * FROM t -- trailing comment\n")
        assert all(t.type is not TokenType.IDENTIFIER or t.value == "t" for t in tokens)

    def test_unknown_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @foo")


class TestParser:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE papers (id integer PRIMARY KEY, title text, score float NOT NULL)"
        )
        assert isinstance(statement, CreateTable)
        assert statement.table == "papers"
        assert statement.columns[0].primary_key
        assert not statement.columns[1].primary_key
        assert not statement.columns[2].nullable

    def test_drop_table(self):
        statement = parse("DROP TABLE papers")
        assert isinstance(statement, DropTable)
        assert statement.table == "papers"

    def test_insert_multiple_rows(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert statement.rows == ((1, "x"), (2, "y"))

    def test_insert_with_placeholders(self):
        statement = parse("INSERT INTO t (a) VALUES (?)")
        assert statement.rows[0][0] is PLACEHOLDER

    def test_insert_without_column_list(self):
        statement = parse("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == ()

    def test_select_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, Select)
        assert statement.columns == ("*",)
        assert not statement.count

    def test_select_count(self):
        statement = parse("SELECT COUNT(*) FROM t WHERE a = 1")
        assert statement.count
        assert statement.where == (Comparison("a", "=", 1),)

    def test_select_with_order_and_limit(self):
        statement = parse("SELECT a, b FROM t WHERE a >= 2 AND b != 'x' ORDER BY a DESC LIMIT 5")
        assert statement.columns == ("a", "b")
        assert statement.order_by == "a"
        assert statement.descending
        assert statement.limit == 5
        assert statement.where[1] == Comparison("b", "!=", "x")

    def test_select_null_and_boolean_literals(self):
        statement = parse("SELECT * FROM t WHERE a = NULL AND b = true")
        assert statement.where[0].value is None
        assert statement.where[1].value is True

    def test_update(self):
        statement = parse("UPDATE t SET a = 5, b = 'x' WHERE id = 3")
        assert isinstance(statement, Update)
        assert statement.assignments == (("a", 5), ("b", "x"))

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE id = 1")
        assert isinstance(statement, Delete)

    def test_trailing_semicolon_allowed(self):
        assert isinstance(parse("SELECT * FROM t;"), Select)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t garbage extra")

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse("VACUUM")

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t LIMIT 'x'")

    def test_create_classification_view_full_form(self):
        statement = parse(
            """
            CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
            ENTITIES FROM Papers KEY id
            LABELS FROM Paper_Area LABEL l
            EXAMPLES FROM Example_Papers KEY id LABEL l
            FEATURE FUNCTION tf_bag_of_words
            USING SVM
            """
        )
        assert isinstance(statement, CreateClassificationView)
        assert statement.view_name == "Labeled_Papers"
        assert statement.entities_table == "Papers"
        assert statement.labels_table == "Paper_Area"
        assert statement.examples_table == "Example_Papers"
        assert statement.feature_function == "tf_bag_of_words"
        assert statement.method == "SVM"

    def test_create_classification_view_without_labels_or_method(self):
        statement = parse(
            "CREATE CLASSIFICATION VIEW v KEY id "
            "ENTITIES FROM e KEY id "
            "EXAMPLES FROM ex KEY id LABEL l "
            "FEATURE FUNCTION tf_bag_of_words"
        )
        assert statement.labels_table is None
        assert statement.method is None

    def test_create_classification_view_missing_clause(self):
        with pytest.raises(SQLSyntaxError):
            parse("CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM e KEY id")


class TestExecutor:
    def make_db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text, year integer)")
        db.executemany(
            "INSERT INTO papers (id, title, year) VALUES (?, ?, ?)",
            [(1, "hazy", 2011), (2, "mauvedb", 2006), (3, "mcdb", 2008)],
        )
        return db

    def test_create_and_insert_and_count(self):
        db = self.make_db()
        assert db.execute("SELECT COUNT(*) FROM papers").scalar() == 3

    def test_select_where(self):
        db = self.make_db()
        rows = db.execute("SELECT title FROM papers WHERE year >= 2008").rows
        assert {row["title"] for row in rows} == {"hazy", "mcdb"}

    def test_select_order_and_limit(self):
        db = self.make_db()
        rows = db.execute("SELECT id FROM papers ORDER BY year DESC LIMIT 2").rows
        assert [row["id"] for row in rows] == [1, 3]

    def test_select_unknown_column_raises(self):
        db = self.make_db()
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT venue FROM papers")

    def test_select_unknown_table_raises(self):
        with pytest.raises(SQLExecutionError):
            self.make_db().execute("SELECT * FROM nope")

    def test_update(self):
        db = self.make_db()
        result = db.execute("UPDATE papers SET year = 2012 WHERE id = 1")
        assert result.rowcount == 1
        assert db.execute("SELECT year FROM papers WHERE id = 1").rows[0]["year"] == 2012

    def test_delete(self):
        db = self.make_db()
        assert db.execute("DELETE FROM papers WHERE year < 2010").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM papers").scalar() == 1

    def test_placeholder_binding_in_where(self):
        db = self.make_db()
        rows = db.execute("SELECT id FROM papers WHERE title = ?", ("mcdb",)).rows
        assert rows == [{"id": 3}]

    def test_missing_parameters_raise(self):
        db = self.make_db()
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO papers (id, title, year) VALUES (?, ?, ?)", (9,))

    def test_insert_arity_mismatch(self):
        db = self.make_db()
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO papers (id, title) VALUES (1, 'x', 2000)")

    def test_drop_table(self):
        db = self.make_db()
        db.execute("DROP TABLE papers")
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM papers")

    def test_composite_primary_key_rejected(self):
        db = Database()
        with pytest.raises(SQLExecutionError):
            db.execute("CREATE TABLE t (a integer PRIMARY KEY, b integer PRIMARY KEY)")

    def test_classification_view_requires_engine(self):
        db = self.make_db()
        db.execute("CREATE TABLE examples (id integer PRIMARY KEY, label integer)")
        with pytest.raises(SQLExecutionError):
            db.execute(
                "CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM papers KEY id "
                "EXAMPLES FROM examples KEY id LABEL label FEATURE FUNCTION tf_bag_of_words"
            )

    def test_logical_view_readable_through_sql(self):
        db = self.make_db()
        db.catalog.register_view("recent", lambda: iter([{"id": 1, "year": 2011}]))
        rows = db.execute("SELECT * FROM recent WHERE year = 2011").rows
        assert rows == [{"id": 1, "year": 2011}]

    def test_scalar_on_empty_result_raises(self):
        db = self.make_db()
        result = db.execute("SELECT * FROM papers WHERE id = 99")
        with pytest.raises(SQLExecutionError):
            result.scalar()

    def test_io_statistics_accumulate(self):
        db = self.make_db()
        before = db.io_snapshot().tuples_read
        db.execute("SELECT COUNT(*) FROM papers")
        assert db.stats.tuples_read > before
        db.reset_statistics()
        assert db.stats.tuples_read == 0
