"""Differential SQL oracle: index plans vs a forced-SeqScan ground truth.

A seeded generator produces random tables, secondary indexes — single-column
and composite — and a stream of SELECTs: equality and range predicates,
multi-conjunct WHEREs, one join, explicit projections (which can make an
index probe *covering*), ``ORDER BY ... ASC|DESC`` with and without LIMIT —
and every query is executed twice: once through the planner's chosen plan
(index paths enabled) and once through a reference
``Planner(db, use_index_paths=False)`` whose only base-table access path is
``SeqScan`` under the residual ``Filter``.  The two answers must be
identical: same row multiset always, and for ordered queries the same
ORDER BY column sequence (SQL leaves tie order unspecified, so ties are
compared as sets).  Each program also draws its execution mode (``batched``
or ``row``) at random, so both protocols face the oracle.

The seed is fixed for the tier-1 run so failures reproduce; CI's nightly-style
job rotates it through ``SQL_DIFFERENTIAL_SEED`` to keep exploring new
programs without blocking merges.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.db.sql.parser import parse
from repro.db.sql.planner import Planner

#: Fixed default so tier-1 failures reproduce; the nightly CI job rotates it.
SEED = int(os.environ.get("SQL_DIFFERENTIAL_SEED", "20260731"))

QUERIES_PER_PROGRAM = 60
PROGRAMS = 6
ROWS_PER_TABLE = (40, 140)

_COMPARABLE_OPS = ("=", "!=", "<", "<=", ">", ">=")


def _canonical(rows: list[dict]) -> list[tuple]:
    """Order-insensitive canonical form of a result set (a sorted multiset)."""
    return sorted(
        tuple(sorted((k.lower(), repr(v)) for k, v in row.items())) for row in rows
    )


def _order_column_values(rows: list[dict], column: str) -> list:
    bare = column.rpartition(".")[2].lower()
    out = []
    for row in rows:
        matched = next(key for key in row if key.lower() == bare)
        out.append(row[matched])
    return out


def assert_equivalent(
    chosen: list[dict],
    reference: list[dict],
    sql: str,
    order_by=None,
    unlimited_reference: list[dict] | None = None,
):
    """Same multiset of rows; for ordered queries, the same key sequence.

    ``ORDER BY ... LIMIT k`` with a tie at the cutoff is the one place SQL
    itself is nondeterministic (either tied row is a correct answer), so for
    those queries the oracle checks the order-column sequence is identical
    and every chosen row is drawn from the *unlimited* reference answer.
    """
    if order_by is not None:
        assert _order_column_values(chosen, order_by) == _order_column_values(
            reference, order_by
        ), f"ORDER BY sequence differs for:\n  {sql}"
    if unlimited_reference is not None:
        assert len(chosen) == len(reference), f"row counts differ for:\n  {sql}"
        pool = _canonical(unlimited_reference)
        for row in _canonical(chosen):
            assert row in pool, (
                f"index plan produced a row outside the reference answer for:"
                f"\n  {sql}\n  row={row!r}"
            )
        return
    assert _canonical(chosen) == _canonical(reference), (
        f"index plan and SeqScan reference disagree for:\n  {sql}\n"
        f"  chosen={chosen!r}\n  reference={reference!r}"
    )


class Program:
    """One randomly generated schema + data + index set over a database."""

    def __init__(self, rng: random.Random, cost_model: CostModel):
        self.rng = rng
        self.db = Database(
            cost_model=cost_model,
            execution_mode=rng.choice(("batched", "row")),
        )
        self.reference_planner = Planner(self.db, use_index_paths=False)
        self.columns = {
            "t_a": ["id", "num", "score", "tag"],
            "t_b": ["id", "num", "score", "tag"],
        }
        self.next_index = 0
        self.next_row_id = 10_000  # fresh-id counter: inserts can never collide
        self.live_indexes: list[str] = []
        for table in self.columns:
            self.db.execute(
                f"CREATE TABLE {table} (id integer PRIMARY KEY, num integer, "
                "score float, tag text)"
            )
            for row_id in range(rng.randrange(*ROWS_PER_TABLE)):
                self.db.execute(
                    f"INSERT INTO {table} (id, num, score, tag) VALUES (?, ?, ?, ?)",
                    (
                        row_id,
                        rng.randrange(0, 25),
                        round(rng.uniform(-2.0, 2.0), 3),
                        rng.choice(("alpha", "beta", "gamma", "delta")),
                    ),
                )

    # -- random DDL/DML churn ------------------------------------------------------------

    def mutate(self) -> None:
        rng = self.rng
        table = rng.choice(list(self.columns))
        roll = rng.random()
        if roll < 0.35:
            self.next_row_id += 1
            self.db.execute(
                f"INSERT INTO {table} (id, num, score, tag) VALUES (?, ?, ?, ?)",
                (
                    self.next_row_id,
                    rng.randrange(0, 25),
                    round(rng.uniform(-2.0, 2.0), 3),
                    rng.choice(("alpha", "beta", "gamma", "delta")),
                ),
            )
        elif roll < 0.6:
            self.db.execute(
                f"UPDATE {table} SET num = ?, score = ? WHERE num = ?",
                (rng.randrange(0, 25), round(rng.uniform(-2.0, 2.0), 3), rng.randrange(0, 25)),
            )
        elif roll < 0.8:
            self.db.execute(f"DELETE FROM {table} WHERE num = ?", (rng.randrange(0, 25),))
        elif roll < 0.92 or not self.live_indexes:
            name = f"idx_{self.next_index}"
            self.next_index += 1
            if rng.random() < 0.45:  # composite: two or three key columns
                columns = rng.sample(["num", "score", "tag"], rng.choice((2, 3)))
            else:
                columns = [rng.choice(["num", "score", "tag"])]
            self.db.execute(f"CREATE INDEX {name} ON {table} ({', '.join(columns)})")
            self.live_indexes.append(name)
        else:
            victim = self.live_indexes.pop(rng.randrange(len(self.live_indexes)))
            self.db.execute(f"DROP INDEX {victim}")

    # -- random SELECTs ------------------------------------------------------------------

    def _predicate(self, qualifier: str = "") -> str:
        rng = self.rng
        column = rng.choice(["id", "num", "score", "tag"])
        op = rng.choice(_COMPARABLE_OPS)
        if column == "id":
            value = str(rng.randrange(0, 150))
        elif column == "num":
            value = str(rng.randrange(0, 25))
        elif column == "score":
            value = str(round(rng.uniform(-2.0, 2.0), 3))
        else:
            value = f"'{rng.choice(('alpha', 'beta', 'gamma', 'delta'))}'"
        return f"{qualifier}{column} {op} {value}"

    def random_select(self) -> tuple[str, str | None, str | None]:
        """``(sql, order_by_column, unlimited_sql)`` — the last is set only for
        ORDER BY + LIMIT queries (tie-at-the-cutoff containment check)."""
        rng = self.rng
        if rng.random() < 0.15:
            sql = (
                "SELECT t_a.id, t_a.num, t_b.tag FROM t_a JOIN t_b ON t_a.id = t_b.id"
            )
            if rng.random() < 0.6:
                sql += f" WHERE {self._predicate('t_a.')}"
                if rng.random() < 0.5:
                    sql += f" AND {self._predicate('t_b.')}"
            return sql, None, None
        table = rng.choice(list(self.columns))
        where = ""
        if rng.random() < 0.85:
            conjuncts = [self._predicate() for _ in range(rng.choice((1, 1, 2, 3)))]
            where = " WHERE " + " AND ".join(conjuncts)
        order_by = None
        order_clause = ""
        with_limit = False
        if rng.random() < 0.5:
            order_by = rng.choice(["id", "num", "score"])
            direction = rng.choice(("ASC", "DESC"))
            order_clause = f" ORDER BY {order_by} {direction}"
            with_limit = rng.random() < 0.6
        # Explicit projections exercise covered (index-only) plans whenever the
        # selected columns land inside a live index's key.
        projection = "*"
        if rng.random() < 0.4:
            selected = rng.sample(["id", "num", "score", "tag"], rng.choice((1, 2, 3)))
            if order_by is not None and order_by not in selected:
                selected.append(order_by)
            projection = ", ".join(selected)
        sql = f"SELECT {projection} FROM {table}{where}{order_clause}"
        unlimited_sql = None
        if with_limit:
            unlimited_sql = sql
            sql += f" LIMIT {rng.randrange(1, 12)}"
        return sql, order_by, unlimited_sql

    # -- the two executions --------------------------------------------------------------

    def run_both(self, sql: str) -> tuple[list[dict], list[dict]]:
        chosen = self.db.execute(sql).rows
        reference = self.run_reference(sql)
        return chosen, reference

    def run_reference(self, sql: str) -> list[dict]:
        reference_plan = self.reference_planner.plan_select(parse(sql))
        rows, _ = reference_plan.run(self.db, [], None)
        return rows


@pytest.mark.parametrize("program_index", range(PROGRAMS))
@pytest.mark.parametrize(
    "cost_model_name", ["main_memory", "on_disk"], ids=["mm", "disk"]
)
def test_differential_oracle(program_index: int, cost_model_name: str):
    """Every generated query answers identically with and without indexes."""
    cost_model = (
        CostModel.main_memory() if cost_model_name == "main_memory" else CostModel()
    )
    rng = random.Random(f"{SEED}:{cost_model_name}:{program_index}")
    program = Program(rng, cost_model)
    for _ in range(QUERIES_PER_PROGRAM):
        for _ in range(rng.randrange(0, 4)):
            program.mutate()
        sql, order_by, unlimited_sql = program.random_select()
        chosen, reference = program.run_both(sql)
        unlimited = (
            program.run_reference(unlimited_sql) if unlimited_sql is not None else None
        )
        assert_equivalent(chosen, reference, sql, order_by, unlimited)


def test_reference_planner_never_uses_indexes():
    """The oracle's ground truth really is scan-only, even when indexes exist."""
    db = Database(cost_model=CostModel.main_memory())
    db.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
    for i in range(50):
        db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i % 7))
    db.execute("CREATE INDEX idx_v ON t (v)")
    reference = Planner(db, use_index_paths=False)
    for sql in (
        "SELECT * FROM t WHERE id = 3",
        "SELECT * FROM t WHERE v >= 5",
        "SELECT * FROM t WHERE v = 2 ORDER BY v LIMIT 3",
    ):
        plan = reference.plan_select(parse(sql))
        labels = [row["node"].strip() for row in plan.explain_rows()]
        assert any(label.startswith("SeqScan") for label in labels), labels
        assert not any("IndexRange" in label for label in labels), labels


def test_composite_covering_and_desc_shapes_against_reference():
    """Deterministic battery: the new query shapes answer byte-identically.

    Composite leftmost-prefix probes, covered projections (index-only scans),
    and ``ORDER BY ... DESC LIMIT k`` each get checked against the
    forced-SeqScan reference, and the EXPLAIN labels confirm the intended
    access paths were actually chosen (so the shapes cannot silently
    degenerate into plain scans).
    """
    db = Database(cost_model=CostModel.main_memory())
    db.execute(
        "CREATE TABLE t (id integer PRIMARY KEY, num integer, score float, tag text)"
    )
    rng = random.Random(7)
    for i in range(180):
        db.execute(
            "INSERT INTO t (id, num, score, tag) VALUES (?, ?, ?, ?)",
            (i, rng.randrange(0, 12), round(rng.uniform(-2.0, 2.0), 2),
             rng.choice(("alpha", "beta", "gamma"))),
        )
    db.execute("CREATE INDEX idx_ns ON t (num, score)")
    db.execute("CREATE INDEX idx_score ON t (score)")
    reference = Planner(db, use_index_paths=False)
    cases = {
        "SELECT * FROM t WHERE num = 4 AND score >= 0.0": "SecondaryIndexRange",
        "SELECT num, score FROM t WHERE num = 4 AND score >= 0.0": "covering",
        "SELECT * FROM t ORDER BY score DESC LIMIT 8": "order=score desc",
        "SELECT * FROM t WHERE num = 7 ORDER BY score DESC LIMIT 5": "order=score desc",
    }
    for sql, expected_label_part in cases.items():
        labels = [row["node"].strip() for row in db.execute(f"EXPLAIN {sql}").rows]
        assert any(expected_label_part in label for label in labels), (sql, labels)
        chosen = db.execute(sql).rows
        rows, _ = reference.plan_select(parse(sql)).run(db, [], None)
        if "ORDER BY" in sql:
            assert _order_column_values(chosen, "score") == _order_column_values(
                rows, "score"
            ), sql
        else:
            assert_equivalent(chosen, rows, sql)
