"""Hash joins between base tables and classification views through SQL."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import SQLPlanningError, SQLSyntaxError

from tests.db.test_sql_plan import balanced_portal


def expected_join(conn, class_value=None):
    """Reference result: nested-loop join computed client-side."""
    entities = {
        row["id"]: row["features"]
        for row in conn.execute("SELECT * FROM entities").fetchall()
    }
    view = {
        row["id"]: row["class"] for row in conn.execute("SELECT * FROM labeled").fetchall()
    }
    rows = []
    for entity_id, features in entities.items():
        if entity_id not in view:
            continue
        if class_value is not None and view[entity_id] != class_value:
            continue
        rows.append({"id": entity_id, "class": view[entity_id]})
    return sorted(rows, key=lambda row: row["id"])


class TestJoinCorrectness:
    def test_table_join_unserved_view(self):
        conn = balanced_portal()
        try:
            got = conn.execute(
                "SELECT entities.id, class FROM entities JOIN labeled "
                "ON entities.id = labeled.id WHERE class = 1 ORDER BY entities.id"
            ).fetchall()
            assert [
                {"id": row["id"], "class": row["class"]} for row in got
            ] == expected_join(conn, class_value=1)
        finally:
            conn.close()

    def test_table_join_served_view_with_and_without_pushdown(self):
        conn = balanced_portal()
        try:
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            with_class = conn.execute(
                "SELECT entities.id, class FROM entities JOIN labeled "
                "ON entities.id = labeled.id WHERE class = 1 ORDER BY entities.id"
            ).fetchall()
            assert [
                {"id": row["id"], "class": row["class"]} for row in with_class
            ] == expected_join(conn, class_value=1)
            # No class predicate: the probe keys drive the batcher instead of
            # materializing the view; every entity matches exactly once.
            without = conn.execute(
                "SELECT entities.id, class FROM entities JOIN labeled "
                "ON entities.id = labeled.id ORDER BY entities.id"
            ).fetchall()
            assert [
                {"id": row["id"], "class": row["class"]} for row in without
            ] == expected_join(conn)
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_join_key_range_pushdown_on_view_side(self):
        conn = balanced_portal()
        try:
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            got = conn.execute(
                "SELECT entities.id, class FROM entities JOIN labeled "
                "ON entities.id = labeled.id "
                "WHERE class = 1 AND labeled.id >= 40 ORDER BY entities.id"
            ).fetchall()
            expected = [
                row for row in expected_join(conn, class_value=1) if row["id"] >= 40
            ]
            assert [{"id": row["id"], "class": row["class"]} for row in got] == expected
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_colliding_columns_are_qualified_on_the_join_side(self):
        conn = balanced_portal()
        try:
            row = conn.execute(
                "SELECT * FROM entities JOIN labeled ON entities.id = labeled.id LIMIT 1"
            ).fetchone()
            # Left columns keep their names; the right side's colliding key is
            # prefixed with the join source's name.
            assert "id" in row and "features" in row and "class" in row
            assert "labeled.id" in row
            assert row["id"] == row["labeled.id"]
        finally:
            conn.close()

    def test_join_on_class_column_materializes_instead_of_probe_lookup(self):
        """A join keyed on a non-entity-key view column must not route through
        the batched point lookup (which would treat class values as ids)."""
        conn = balanced_portal()
        try:
            conn.execute("CREATE TABLE classes (label integer PRIMARY KEY, name text)")
            conn.execute("INSERT INTO classes (label, name) VALUES (1, 'pos'), (-1, 'neg')")
            sql = (
                "SELECT name, labeled.id FROM classes JOIN labeled "
                "ON classes.label = labeled.class ORDER BY labeled.id"
            )
            unserved = conn.execute(sql).fetchall()
            assert len(unserved) == conn.execute("SELECT COUNT(*) FROM labeled").scalar()
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            served = conn.execute(sql).fetchall()
            assert served == unserved
            plan = conn.execute(f"EXPLAIN {sql}").fetchall()
            assert not any("batch" in row["node"] for row in plan)
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_count_over_join(self):
        conn = balanced_portal()
        try:
            count = conn.execute(
                "SELECT COUNT(*) FROM entities JOIN labeled "
                "ON entities.id = labeled.id WHERE class = 1"
            ).scalar()
            assert count == len(expected_join(conn, class_value=1))
        finally:
            conn.close()

    def test_table_join_table(self):
        conn = balanced_portal()
        try:
            count = conn.execute(
                "SELECT COUNT(*) FROM examples JOIN entities ON examples.id = entities.id"
            ).scalar()
            assert count == conn.execute("SELECT COUNT(*) FROM examples").scalar()
        finally:
            conn.close()

    def test_join_on_requires_both_sides(self):
        conn = balanced_portal()
        try:
            with pytest.raises(SQLPlanningError, match="each side"):
                conn.execute(
                    "SELECT * FROM entities JOIN labeled ON entities.id = entities.id"
                )
            with pytest.raises(SQLSyntaxError, match="equality"):
                conn.execute(
                    "SELECT * FROM entities JOIN labeled ON entities.id >= labeled.id"
                )
        finally:
            conn.close()


class TestJoinSessionConsistency:
    """Read-your-writes holds through the join under concurrent writes."""

    def test_join_sees_this_connections_example_insert(self):
        conn = balanced_portal()
        try:
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            missing = conn.execute(
                "SELECT COUNT(*) FROM examples WHERE id = 999"
            ).scalar()
            assert missing == 0
            # A diverted write through this connection parks a ticket on its
            # session; the next join read must wait for it to become visible.
            victim = conn.execute("SELECT id FROM entities LIMIT 1").scalar()
            conn.execute("INSERT INTO examples (id, label) VALUES (?, ?)", (victim, 1))
            session = conn.session("labeled")
            assert session._pending is not None
            rows = conn.execute(
                "SELECT entities.id, class FROM entities JOIN labeled "
                "ON entities.id = labeled.id"
            ).fetchall()
            assert session._pending is None  # the join consumed the ticket
            assert session.last_epoch >= 1
            assert len(rows) == conn.execute("SELECT COUNT(*) FROM entities").scalar()
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_joins_stay_correct_under_concurrent_writers(self):
        import repro

        conn = balanced_portal()
        try:
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            entity_count = conn.execute("SELECT COUNT(*) FROM entities").scalar()
            labels = {
                row["id"]: row["label"]
                for row in conn.execute("SELECT * FROM examples").fetchall()
            }
            unlabeled = [
                row["id"]
                for row in conn.execute("SELECT id FROM entities").fetchall()
                if row["id"] not in labels
            ]
            errors: list[BaseException] = []

            def writer():
                try:
                    writer_conn = repro.connect(engine=conn.engine)
                    for entity_id in unlabeled[:20]:
                        writer_conn.execute(
                            "INSERT INTO examples (id, label) VALUES (?, ?)",
                            (entity_id, 1 if entity_id % 2 else -1),
                        )
                    writer_conn.close()
                except BaseException as error:  # pragma: no cover - failure path
                    errors.append(error)

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                for _ in range(15):
                    rows = conn.execute(
                        "SELECT entities.id, class FROM entities JOIN labeled "
                        "ON entities.id = labeled.id"
                    ).fetchall()
                    # Every entity joins exactly once, whatever epoch answered.
                    assert len(rows) == entity_count
                    assert all(row["class"] in (1, -1) for row in rows)
            finally:
                thread.join()
            assert not errors
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()
