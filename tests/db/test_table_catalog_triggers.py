"""Unit tests for tables, the catalog, and triggers."""

from __future__ import annotations

import pytest

from repro.db.buffer_pool import BufferPool
from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.triggers import Trigger, TriggerEvent, TriggerSet
from repro.db.types import DataType
from repro.exceptions import CatalogError, DuplicateKeyError, KeyNotFoundError, SchemaError


def make_table(primary_key: str | None = "id") -> Table:
    schema = TableSchema(
        "papers",
        [Column("id", DataType.INTEGER, nullable=False), Column("title", DataType.TEXT)],
        primary_key=primary_key,
    )
    return Table(schema, BufferPool(CostModel()))


class TestTable:
    def test_insert_and_get(self):
        table = make_table()
        table.insert({"id": 1, "title": "Hazy"})
        assert table.get_by_key(1)["title"] == "Hazy"
        assert table.row_count() == 1

    def test_duplicate_primary_key_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 1})

    def test_missing_key_raises(self):
        with pytest.raises(KeyNotFoundError):
            make_table().get_by_key(99)

    def test_try_get_returns_none(self):
        assert make_table().try_get_by_key(99) is None

    def test_update_by_key(self):
        table = make_table()
        table.insert({"id": 1, "title": "a"})
        updated = table.update_by_key(1, {"title": "b"})
        assert updated["title"] == "b"
        assert table.get_by_key(1)["title"] == "b"

    def test_update_changing_primary_key(self):
        table = make_table()
        table.insert({"id": 1, "title": "a"})
        table.update_by_key(1, {"id": 2})
        assert table.try_get_by_key(1) is None
        assert table.get_by_key(2)["title"] == "a"

    def test_update_to_conflicting_key_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        table.insert({"id": 2})
        with pytest.raises(DuplicateKeyError):
            table.update_by_key(1, {"id": 2})

    def test_delete_by_key(self):
        table = make_table()
        table.insert({"id": 1})
        deleted = table.delete_by_key(1)
        assert deleted["id"] == 1
        assert table.row_count() == 0

    def test_scan_with_predicate(self):
        table = make_table()
        table.insert_many([{"id": i, "title": f"p{i}"} for i in range(10)])
        even = list(table.scan(lambda row: row["id"] % 2 == 0))
        assert len(even) == 5

    def test_count(self):
        table = make_table()
        table.insert_many([{"id": i} for i in range(7)])
        assert table.count() == 7
        assert table.count(lambda row: row["id"] < 3) == 3

    def test_operations_requiring_pk_fail_without_one(self):
        table = make_table(primary_key=None)
        table.insert({"id": 1})
        with pytest.raises(SchemaError):
            table.get_by_key(1)
        with pytest.raises(SchemaError):
            table.update_by_key(1, {})
        with pytest.raises(SchemaError):
            table.delete_by_key(1)

    def test_truncate(self):
        table = make_table()
        table.insert_many([{"id": i} for i in range(5)])
        table.truncate()
        assert table.row_count() == 0
        assert table.try_get_by_key(1) is None

    def test_size_accounting(self):
        table = make_table()
        table.insert_many([{"id": i, "title": "x" * 100} for i in range(100)])
        assert table.page_count() >= 1
        assert table.approximate_size_bytes() >= table.page_count() * 8192


class TestTriggers:
    def test_after_insert_trigger_fires(self):
        table = make_table()
        seen = []
        table.add_trigger(
            Trigger("t", TriggerEvent.AFTER_INSERT, lambda name, new, old: seen.append((name, new)))
        )
        table.insert({"id": 1, "title": "x"})
        assert seen and seen[0][0] == "papers"
        assert seen[0][1]["id"] == 1

    def test_after_update_and_delete_triggers(self):
        table = make_table()
        events = []
        table.add_trigger(
            Trigger("u", TriggerEvent.AFTER_UPDATE, lambda n, new, old: events.append(("u", old["title"], new["title"])))
        )
        table.add_trigger(
            Trigger("d", TriggerEvent.AFTER_DELETE, lambda n, new, old: events.append(("d", old["id"])))
        )
        table.insert({"id": 1, "title": "a"})
        table.update_by_key(1, {"title": "b"})
        table.delete_by_key(1)
        assert ("u", "a", "b") in events
        assert ("d", 1) in events

    def test_drop_trigger(self):
        table = make_table()
        seen = []
        table.add_trigger(Trigger("t", TriggerEvent.AFTER_INSERT, lambda n, new, old: seen.append(1)))
        assert table.drop_trigger("t")
        table.insert({"id": 1})
        assert seen == []

    def test_trigger_set_fires_in_registration_order(self):
        order = []
        triggers = TriggerSet()
        triggers.add(Trigger("first", TriggerEvent.AFTER_INSERT, lambda n, new, old: order.append(1)))
        triggers.add(Trigger("second", TriggerEvent.AFTER_INSERT, lambda n, new, old: order.append(2)))
        triggers.fire(TriggerEvent.AFTER_INSERT, "t", {}, None)
        assert order == [1, 2]

    def test_trigger_names(self):
        triggers = TriggerSet()
        triggers.add(Trigger("a", TriggerEvent.AFTER_INSERT, lambda n, new, old: None))
        assert triggers.names() == ["a"]

    def test_remove_missing_trigger_returns_false(self):
        assert not TriggerSet().remove("missing")


class TestCatalog:
    def test_register_and_lookup_table(self):
        catalog = Catalog()
        table = make_table()
        catalog.register_table(table)
        assert catalog.table("PAPERS") is table
        assert catalog.has_table("papers")
        assert catalog.table_names() == ["papers"]

    def test_duplicate_names_rejected_across_kinds(self):
        catalog = Catalog()
        catalog.register_table(make_table())
        with pytest.raises(CatalogError):
            catalog.register_view("papers", lambda: iter([]))
        with pytest.raises(CatalogError):
            catalog.register_classification_view("Papers", object())

    def test_missing_objects_raise(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("nope")
        with pytest.raises(CatalogError):
            catalog.view("nope")
        with pytest.raises(CatalogError):
            catalog.classification_view("nope")
        with pytest.raises(CatalogError):
            catalog.resolve("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.register_table(make_table())
        catalog.drop_table("papers")
        assert not catalog.has_table("papers")
        with pytest.raises(CatalogError):
            catalog.drop_table("papers")

    def test_views_and_classification_views(self):
        catalog = Catalog()
        catalog.register_view("v", lambda: iter([{"a": 1}]))
        marker = object()
        catalog.register_classification_view("cv", marker)
        assert list(catalog.view("v")()) == [{"a": 1}]
        assert catalog.classification_view("cv") is marker
        assert catalog.has_view("v")
        assert catalog.has_classification_view("CV")
        assert catalog.classification_view_names() == ["cv"]

    def test_resolve_dispatches_by_kind(self):
        catalog = Catalog()
        table = make_table()
        catalog.register_table(table)
        catalog.register_view("v", lambda: iter([]))
        assert catalog.resolve("papers") is table
        assert callable(catalog.resolve("v"))
