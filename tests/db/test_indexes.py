"""Unit tests for the B+-tree and hash index."""

from __future__ import annotations

import random

import pytest

from repro.db.btree import BPlusTree
from repro.db.hash_index import HashIndex
from repro.db.page import RecordId
from repro.exceptions import DatabaseError, DuplicateKeyError, KeyNotFoundError


class TestBPlusTreeBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1.0) == []
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert list(tree.items()) == []

    def test_invalid_order(self):
        with pytest.raises(DatabaseError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(1.5, "a")
        tree.insert(-2.0, "b")
        assert tree.search(1.5) == ["a"]
        assert tree.search(-2.0) == ["b"]
        assert tree.search(0.0) == []
        assert len(tree) == 2

    def test_duplicate_keys_supported(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert sorted(tree.search(1.0)) == ["a", "b"]
        assert len(tree) == 2

    def test_min_and_max_keys(self):
        tree = BPlusTree(order=4)
        for value in [5.0, -1.0, 3.0, 10.0]:
            tree.insert(value, value)
        assert tree.min_key() == -1.0
        assert tree.max_key() == 10.0

    def test_split_keeps_items_sorted(self):
        tree = BPlusTree(order=4)
        values = list(range(100))
        random.Random(0).shuffle(values)
        for value in values:
            tree.insert(float(value), value)
        keys = [key for key, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(tree) == 100
        assert tree.height > 1
        tree.check_invariants()

    def test_delete_single_occurrence(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert tree.delete(1.0, "a")
        assert tree.search(1.0) == ["b"]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        assert not tree.delete(2.0, "a")
        assert not tree.delete(1.0, "missing")

    def test_clear(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.clear()
        assert len(tree) == 0
        assert tree.height == 1

    def test_bulk_load(self):
        tree = BPlusTree.bulk_load([(float(i), i) for i in range(50)], order=8)
        assert len(tree) == 50
        tree.check_invariants()


class TestBPlusTreeRangeScans:
    def _build(self, count: int = 200, order: int = 8) -> BPlusTree:
        tree = BPlusTree(order=order)
        values = list(range(count))
        random.Random(1).shuffle(values)
        for value in values:
            tree.insert(float(value), value)
        return tree

    def test_range_scan_inclusive_bounds(self):
        tree = self._build()
        result = [payload for _, payload in tree.range_scan(10.0, 20.0)]
        assert result == list(range(10, 21))

    def test_range_scan_unbounded_low(self):
        tree = self._build(50)
        result = [payload for _, payload in tree.range_scan(None, 5.0)]
        assert result == list(range(0, 6))

    def test_range_scan_unbounded_high(self):
        tree = self._build(50)
        result = [payload for _, payload in tree.range_scan(45.0, None)]
        assert result == list(range(45, 50))

    def test_range_scan_empty_interval(self):
        tree = self._build(50)
        assert list(tree.range_scan(30.0, 20.0)) == []

    def test_range_scan_between_keys(self):
        tree = self._build(50)
        assert [p for _, p in tree.range_scan(10.5, 11.5)] == [11]

    def test_range_scan_matches_sorted_filter(self):
        rng = random.Random(7)
        pairs = [(rng.uniform(-10, 10), i) for i in range(300)]
        tree = BPlusTree(order=6)
        for key, payload in pairs:
            tree.insert(key, payload)
        low, high = -3.0, 4.0
        expected = sorted(
            [(k, p) for k, p in pairs if low <= k <= high], key=lambda pair: pair[0]
        )
        actual = list(tree.range_scan(low, high))
        assert [p for _, p in actual] == [p for _, p in expected]


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        assert index.lookup(5) == RecordId(0, 1)
        assert index.get(5) == RecordId(0, 1)
        assert 5 in index
        assert len(index) == 1

    def test_duplicate_insert_rejected(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        with pytest.raises(DuplicateKeyError):
            index.insert(5, RecordId(0, 2))

    def test_missing_key_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex("id").lookup(1)

    def test_get_returns_none_for_missing(self):
        assert HashIndex("id").get(1) is None

    def test_update_repoints(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        index.update(5, RecordId(3, 0))
        assert index.lookup(5) == RecordId(3, 0)

    def test_update_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex("id").update(1, RecordId(0, 0))

    def test_delete_and_clear(self):
        index = HashIndex("id")
        index.insert(1, RecordId(0, 0))
        index.insert(2, RecordId(0, 1))
        index.delete(1)
        assert index.get(1) is None
        index.clear()
        assert len(index) == 0

    def test_keys_iteration(self):
        index = HashIndex("id")
        index.insert("a", RecordId(0, 0))
        index.insert("b", RecordId(0, 1))
        assert sorted(index.keys()) == ["a", "b"]


class TestBPlusTreeCoercionAndStats:
    def test_distinct_keys_tracks_inserts_and_deletes(self):
        tree = BPlusTree(order=4)
        assert tree.distinct_keys == 0
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        tree.insert(2.0, "c")
        assert tree.distinct_keys == 2
        tree.delete(1.0, "a")
        assert tree.distinct_keys == 2  # bucket still holds "b"
        tree.delete(1.0, "b")
        assert tree.distinct_keys == 1
        tree.clear()
        assert tree.distinct_keys == 0

    def test_uncoerced_tree_stores_strings(self):
        tree = BPlusTree(order=4, coerce=None)
        for word in ["delta", "alpha", "carol", "bob"]:
            tree.insert(word, word.upper())
        assert [key for key, _ in tree.items()] == ["alpha", "bob", "carol", "delta"]
        assert tree.search("bob") == ["BOB"]
        assert tree.delete("bob", "BOB")
        assert tree.min_key() == "alpha" and tree.max_key() == "delta"
        tree.check_invariants()

    def test_default_tree_still_coerces_to_float(self):
        tree = BPlusTree(order=4)
        tree.insert(3, "x")  # int in ...
        assert tree.search(3.0) == ["x"]  # ... float key out
        assert tree.delete(3, "x")


class TestSecondaryIndexMaintenance:
    """Table-level maintenance: inserts, updates, deletes, NULLs, truncate."""

    @staticmethod
    def _table(db=None):
        from repro.db.costmodel import CostModel
        from repro.db.database import Database

        db = db or Database(cost_model=CostModel.main_memory())
        db.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer, s text)")
        return db, db.catalog.table("t")

    def test_backfill_and_inline_maintenance(self):
        db, table = self._table()
        for i in range(10):
            db.execute("INSERT INTO t (id, v, s) VALUES (?, ?, ?)", (i, i % 3, f"w{i}"))
        index = table.create_secondary_index("idx_v", "v")
        assert len(index) == 10
        db.execute("INSERT INTO t (id, v) VALUES (10, 1)")
        assert len(index) == 11
        db.execute("UPDATE t SET v = 2 WHERE id = 10")
        db.execute("DELETE FROM t WHERE id = 0")
        rids = list(index.scan(2, 2))
        rows = [table.heap.read(rid) for rid in rids]
        assert sorted(row["id"] for row in rows) == [2, 5, 8, 10]

    def test_nulls_are_not_indexed_and_coverage_reflects_it(self):
        db, table = self._table()
        db.execute("INSERT INTO t (id, v) VALUES (1, 5), (2, NULL), (3, 7)")
        index = table.create_secondary_index("idx_v", "v")
        assert len(index) == 2
        assert not index.covers_all_rows(table.row_count())
        db.execute("UPDATE t SET v = 9 WHERE id = 2")  # NULL -> value: now indexed
        assert len(index) == 3
        assert index.covers_all_rows(table.row_count())
        db.execute("UPDATE t SET v = NULL WHERE id = 1")  # value -> NULL: removed
        assert len(index) == 2

    def test_strict_bounds_and_string_index(self):
        db, table = self._table()
        db.execute(
            "INSERT INTO t (id, v, s) VALUES (1, 1, 'apple'), (2, 2, 'pear'), "
            "(3, 3, 'fig'), (4, 4, 'pear')"
        )
        index = table.create_secondary_index("idx_s", "s")

        def ids(rids):
            return sorted(table.heap.read(rid)["id"] for rid in rids)

        assert ids(index.scan("fig", "pear")) == [2, 3, 4]
        assert ids(index.scan("fig", "pear", include_low=False)) == [2, 4]
        assert ids(index.scan("fig", "pear", include_high=False)) == [3]
        assert ids(index.scan(None, "fig")) == [1, 3]

    def test_truncate_clears_indexes(self):
        db, table = self._table()
        db.execute("INSERT INTO t (id, v) VALUES (1, 1), (2, 2)")
        index = table.create_secondary_index("idx_v", "v")
        table.truncate()
        assert len(index) == 0

    def test_duplicate_index_name_rejected(self):
        from repro.exceptions import SQLExecutionError

        db, table = self._table()
        db.execute("CREATE INDEX idx_v ON t (v)")
        with pytest.raises(SQLExecutionError, match="already exists"):
            db.execute("CREATE INDEX idx_v ON t (s)")

    def test_index_ddl_diagnostics(self):
        from repro.exceptions import CatalogError, SQLPlanningError

        db, table = self._table()
        with pytest.raises(SQLPlanningError, match="no column"):
            db.execute("CREATE INDEX idx_x ON t (nope)")
        with pytest.raises(SQLPlanningError, match="not a base table"):
            db.execute("CREATE INDEX idx_x ON missing (v)")
        with pytest.raises(CatalogError, match="no index"):
            db.execute("DROP INDEX never_created")

    def test_drop_table_forgets_its_indexes(self):
        from repro.exceptions import CatalogError

        db, table = self._table()
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_index("idx_v")
        with pytest.raises(CatalogError):
            db.catalog.index_table("idx_v")

    def test_estimate_matches_statistics(self):
        db, table = self._table()
        db.executemany(
            "INSERT INTO t (id, v) VALUES (?, ?)", [(i, i % 10) for i in range(100)]
        )
        index = table.create_secondary_index("idx_v", "v")
        assert index.estimate_matches(equality=True) == pytest.approx(10.0)
        # Uniform interpolation over [0, 9]: [0, 3] covers a third of the span.
        est = index.estimate_matches(0, 3)
        assert 20 <= est <= 50
        assert index.estimate_matches(bounds_known=False) == pytest.approx(100 / 3)
        assert index.estimate_matches(20, 30) == 0.0

    def test_nan_values_are_never_indexed(self):
        from repro.db.costmodel import CostModel
        from repro.db.database import Database

        db = Database(cost_model=CostModel.main_memory())
        db.execute("CREATE TABLE f (id integer PRIMARY KEY, v float)")
        table = db.catalog.table("f")
        db.execute("INSERT INTO f (id, v) VALUES (1, 3.5)")
        index = table.create_secondary_index("idx_v", "v")
        nan = float("nan")
        db.execute("INSERT INTO f (id, v) VALUES (?, ?)", (2, nan))
        assert len(index) == 1  # the NaN row is not indexed ...
        assert not index.covers_all_rows(table.row_count())
        db.execute("DELETE FROM f WHERE id = 2")  # ... so deleting leaves no ghost
        assert len(index) == 1
        assert index.covers_all_rows(table.row_count())
        db.execute("INSERT INTO f (id, v) VALUES (?, ?)", (3, nan))
        db.execute("UPDATE f SET v = 5.0 WHERE id = 3")  # NaN -> value: indexed now
        assert len(index) == 2
        # A NaN-valued parameter answers identically to the scan (empty).
        assert db.execute("SELECT id FROM f WHERE v >= ?", (nan,)).rows == []


class TestReverseRangeScan:
    """The doubly-linked leaf chain: descending scans mirror ascending ones."""

    def test_reverse_scan_mirrors_forward_scan(self):
        tree = BPlusTree(order=4)
        keys = random.Random(7).sample(range(1000), 300)
        for key in keys:
            tree.insert(key, f"p{key}")
        tree.check_invariants()
        forward = list(tree.range_scan(None, None))
        assert list(tree.range_scan_reversed(None, None)) == forward[::-1]
        assert list(tree.range_scan_reversed(100, 500)) == list(
            tree.range_scan(100, 500)
        )[::-1]

    def test_reverse_scan_bounds_and_duplicates(self):
        tree = BPlusTree(order=4)
        for key, payload in [(1, "a"), (2, "b"), (2, "c"), (3, "d")]:
            tree.insert(key, payload)
        assert list(tree.range_scan_reversed(2, 2)) == [(2.0, "c"), (2.0, "b")]
        assert list(tree.range_scan_reversed(5, 1)) == []
        assert list(tree.range_scan_reversed(None, 1.5)) == [(1.0, "a")]
        assert list(tree.range_scan_reversed(2.5, None)) == [(3.0, "d")]

    def test_prev_leaf_chain_survives_deletes(self):
        tree = BPlusTree(order=4)
        for key in range(120):
            tree.insert(key, key)
        for key in range(0, 120, 3):
            assert tree.delete(key, key)
        tree.check_invariants()
        remaining = sorted(set(range(120)) - set(range(0, 120, 3)))
        assert [key for key, _ in tree.range_scan_reversed(None, None)] == [
            float(key) for key in reversed(remaining)
        ]

    def test_empty_tree_reverse_scan(self):
        tree = BPlusTree(order=4)
        assert list(tree.range_scan_reversed(None, None)) == []


class TestCompositeSecondaryIndex:
    """Multi-column (tuple-key) secondary indexes and their prefix probes."""

    @staticmethod
    def _table():
        from repro.db.costmodel import CostModel
        from repro.db.database import Database

        db = Database(cost_model=CostModel.main_memory())
        db.execute(
            "CREATE TABLE m (id integer PRIMARY KEY, a integer, b float, c text)"
        )
        return db, db.catalog.table("m")

    def _ids(self, table, entries):
        return sorted(table.heap.read(rid)["id"] for rid in entries)

    def test_tuple_keys_and_prefix_scan(self):
        db, table = self._table()
        db.executemany(
            "INSERT INTO m (id, a, b) VALUES (?, ?, ?)",
            [(i, i % 3, float(i)) for i in range(12)],
        )
        index = table.create_secondary_index("idx_ab", ("a", "b"))
        assert index.is_composite
        assert index.columns == ("a", "b")
        assert len(index) == 12
        # Full-key equality.
        assert self._ids(table, index.scan(4.0, 4.0, equalities=(1,))) == [4]
        # Prefix equality, unbounded range: every a=1 row, ordered by b.
        rids = list(index.scan(None, None, equalities=(1,)))
        assert [table.heap.read(rid)["id"] for rid in rids] == [1, 4, 7, 10]
        # Prefix equality + range on the second column.
        assert self._ids(table, index.scan(4.0, 8.0, equalities=(1,))) == [4, 7]
        assert self._ids(
            table, index.scan(4.0, 8.0, include_low=False, equalities=(1,))
        ) == [7]
        # Reverse walk early-exits from the high end.
        rids = list(index.scan(None, None, equalities=(1,), reverse=True))
        assert [table.heap.read(rid)["id"] for rid in rids] == [10, 7, 4, 1]

    def test_null_in_any_key_column_unindexes_the_row(self):
        db, table = self._table()
        db.execute("INSERT INTO m (id, a, b) VALUES (1, 1, 1.0), (2, 1, NULL), (3, NULL, 2.0)")
        index = table.create_secondary_index("idx_ab", ("a", "b"))
        assert len(index) == 1
        assert not index.covers_all_rows(table.row_count())
        db.execute("UPDATE m SET b = 5.0 WHERE id = 2")
        assert len(index) == 2

    def test_maintenance_replace_and_delete(self):
        db, table = self._table()
        db.execute("INSERT INTO m (id, a, b) VALUES (1, 1, 1.0), (2, 2, 2.0)")
        index = table.create_secondary_index("idx_ab", ("a", "b"))
        db.execute("UPDATE m SET b = 9.0 WHERE id = 1")
        assert self._ids(table, index.scan(9.0, 9.0, equalities=(1,))) == [1]
        assert self._ids(table, index.scan(1.0, 1.0, equalities=(1,))) == []
        db.execute("DELETE FROM m WHERE id = 2")
        assert len(index) == 1

    def test_composite_ddl_and_catalog(self):
        from repro.exceptions import SQLPlanningError

        db, table = self._table()
        db.execute("CREATE INDEX idx_ab ON m (a, b)")
        index = table.secondary_index("idx_ab")
        assert index is not None and index.columns == ("a", "b")
        with pytest.raises(SQLPlanningError, match="more than once"):
            db.execute("CREATE INDEX idx_dup ON m (a, a)")
        with pytest.raises(SQLPlanningError, match="no column"):
            db.execute("CREATE INDEX idx_bad ON m (a, nope)")
        db.execute("DROP INDEX idx_ab")
        assert table.secondary_index("idx_ab") is None

    def test_single_column_scan_rejects_equalities(self):
        db, table = self._table()
        db.execute("INSERT INTO m (id, a, b) VALUES (1, 1, 1.0)")
        index = table.create_secondary_index("idx_a", "a")
        with pytest.raises(ValueError):
            list(index.scan(None, None, equalities=(1,)))

    def test_estimate_prefix_matches(self):
        db, table = self._table()
        db.executemany(
            "INSERT INTO m (id, a, b) VALUES (?, ?, ?)",
            [(i, i % 4, float(i % 25)) for i in range(100)],
        )
        index = table.create_secondary_index("idx_ab", ("a", "b"))
        # Full-key equality: n / distinct keys.
        full = index.estimate_prefix_matches(2, False)
        assert full == pytest.approx(100 / index.tree.distinct_keys)
        # One equality column: n / distinct^(1/2).
        one_eq = index.estimate_prefix_matches(1, False)
        assert one_eq == pytest.approx(100 / (index.tree.distinct_keys**0.5))
        # Adding a range tightens the estimate further.
        assert index.estimate_prefix_matches(1, True) < one_eq
        assert index.estimate_prefix_matches(0, False) == pytest.approx(100.0)
