"""Unit tests for the B+-tree and hash index."""

from __future__ import annotations

import random

import pytest

from repro.db.btree import BPlusTree
from repro.db.hash_index import HashIndex
from repro.db.page import RecordId
from repro.exceptions import DatabaseError, DuplicateKeyError, KeyNotFoundError


class TestBPlusTreeBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1.0) == []
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert list(tree.items()) == []

    def test_invalid_order(self):
        with pytest.raises(DatabaseError):
            BPlusTree(order=2)

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(1.5, "a")
        tree.insert(-2.0, "b")
        assert tree.search(1.5) == ["a"]
        assert tree.search(-2.0) == ["b"]
        assert tree.search(0.0) == []
        assert len(tree) == 2

    def test_duplicate_keys_supported(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert sorted(tree.search(1.0)) == ["a", "b"]
        assert len(tree) == 2

    def test_min_and_max_keys(self):
        tree = BPlusTree(order=4)
        for value in [5.0, -1.0, 3.0, 10.0]:
            tree.insert(value, value)
        assert tree.min_key() == -1.0
        assert tree.max_key() == 10.0

    def test_split_keeps_items_sorted(self):
        tree = BPlusTree(order=4)
        values = list(range(100))
        random.Random(0).shuffle(values)
        for value in values:
            tree.insert(float(value), value)
        keys = [key for key, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(tree) == 100
        assert tree.height > 1
        tree.check_invariants()

    def test_delete_single_occurrence(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.insert(1.0, "b")
        assert tree.delete(1.0, "a")
        assert tree.search(1.0) == ["b"]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        assert not tree.delete(2.0, "a")
        assert not tree.delete(1.0, "missing")

    def test_clear(self):
        tree = BPlusTree(order=4)
        tree.insert(1.0, "a")
        tree.clear()
        assert len(tree) == 0
        assert tree.height == 1

    def test_bulk_load(self):
        tree = BPlusTree.bulk_load([(float(i), i) for i in range(50)], order=8)
        assert len(tree) == 50
        tree.check_invariants()


class TestBPlusTreeRangeScans:
    def _build(self, count: int = 200, order: int = 8) -> BPlusTree:
        tree = BPlusTree(order=order)
        values = list(range(count))
        random.Random(1).shuffle(values)
        for value in values:
            tree.insert(float(value), value)
        return tree

    def test_range_scan_inclusive_bounds(self):
        tree = self._build()
        result = [payload for _, payload in tree.range_scan(10.0, 20.0)]
        assert result == list(range(10, 21))

    def test_range_scan_unbounded_low(self):
        tree = self._build(50)
        result = [payload for _, payload in tree.range_scan(None, 5.0)]
        assert result == list(range(0, 6))

    def test_range_scan_unbounded_high(self):
        tree = self._build(50)
        result = [payload for _, payload in tree.range_scan(45.0, None)]
        assert result == list(range(45, 50))

    def test_range_scan_empty_interval(self):
        tree = self._build(50)
        assert list(tree.range_scan(30.0, 20.0)) == []

    def test_range_scan_between_keys(self):
        tree = self._build(50)
        assert [p for _, p in tree.range_scan(10.5, 11.5)] == [11]

    def test_range_scan_matches_sorted_filter(self):
        rng = random.Random(7)
        pairs = [(rng.uniform(-10, 10), i) for i in range(300)]
        tree = BPlusTree(order=6)
        for key, payload in pairs:
            tree.insert(key, payload)
        low, high = -3.0, 4.0
        expected = sorted(
            [(k, p) for k, p in pairs if low <= k <= high], key=lambda pair: pair[0]
        )
        actual = list(tree.range_scan(low, high))
        assert [p for _, p in actual] == [p for _, p in expected]


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        assert index.lookup(5) == RecordId(0, 1)
        assert index.get(5) == RecordId(0, 1)
        assert 5 in index
        assert len(index) == 1

    def test_duplicate_insert_rejected(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        with pytest.raises(DuplicateKeyError):
            index.insert(5, RecordId(0, 2))

    def test_missing_key_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex("id").lookup(1)

    def test_get_returns_none_for_missing(self):
        assert HashIndex("id").get(1) is None

    def test_update_repoints(self):
        index = HashIndex("id")
        index.insert(5, RecordId(0, 1))
        index.update(5, RecordId(3, 0))
        assert index.lookup(5) == RecordId(3, 0)

    def test_update_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex("id").update(1, RecordId(0, 0))

    def test_delete_and_clear(self):
        index = HashIndex("id")
        index.insert(1, RecordId(0, 0))
        index.insert(2, RecordId(0, 1))
        index.delete(1)
        assert index.get(1) is None
        index.clear()
        assert len(index) == 0

    def test_keys_iteration(self):
        index = HashIndex("id")
        index.insert("a", RecordId(0, 0))
        index.insert("b", RecordId(0, 1))
        assert sorted(index.keys()) == ["a", "b"]
