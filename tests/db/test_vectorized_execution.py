"""The batched (vectorized) execution protocol and its planner surface.

Covers the chunk container itself, the ``batched`` / ``row`` execution modes
(identical answers, row mode alone pays the per-tuple interpretation charge),
the ``mode=`` / ``covering=true`` EXPLAIN detail flags, index-only (covering)
scans, and the ``ORDER BY ... DESC LIMIT k`` fused walk over the ``prev_leaf``
chain.  Golden-plan assertions pin the EXPLAIN text so the flags cannot
silently disappear.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.db.sql.parser import parse
from repro.db.sql.plan import Chunk, _rows_to_chunks
from repro.db.sql.planner import Planner
from repro.exceptions import ConfigurationError


def _canonical(rows: list[dict]) -> list[tuple]:
    return sorted(
        tuple(sorted((k.lower(), repr(v)) for k, v in row.items())) for row in rows
    )


def make_db(execution_mode: str = "batched", cost_model: CostModel | None = None) -> Database:
    db = Database(
        cost_model=cost_model or CostModel.main_memory(), execution_mode=execution_mode
    )
    db.execute(
        "CREATE TABLE t (id integer PRIMARY KEY, a integer, b float, c text)"
    )
    for i in range(300):
        db.execute(
            "INSERT INTO t (id, a, b, c) VALUES (?, ?, ?, ?)",
            (i, i % 7, float(i % 13) - 6.0, f"tag{i % 3}"),
        )
    return db


# ---------------------------------------------------------------------------
# Chunk container
# ---------------------------------------------------------------------------


class TestChunk:
    def test_columnar_round_trip_preserves_exact_values(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": None}, {"a": 3, "b": -1.0}]
        chunks = _rows_to_chunks(["a", "b"], iter(rows))
        assert len(chunks) == 1
        chunk = chunks[0]
        assert chunk.is_columnar
        assert chunk.length == 3
        assert chunk.to_rows() == rows

    def test_rows_to_chunks_slices_at_chunk_size(self):
        from repro.db.sql.plan import DEFAULT_CHUNK_ROWS

        rows = ({"x": i} for i in range(DEFAULT_CHUNK_ROWS + 5))
        chunks = _rows_to_chunks(["x"], rows)
        assert [chunk.length for chunk in chunks] == [DEFAULT_CHUNK_ROWS, 5]

    def test_resolve_is_case_insensitive(self):
        chunk = Chunk.columnar(["Id", "Val"], {"Id": [1], "Val": [2]})
        assert chunk.resolve("id") == "Id"
        assert chunk.resolve("VAL") == "Val"
        assert chunk.resolve("missing") is None

    def test_numeric_view_only_for_safe_numerics(self):
        chunk = Chunk.columnar(
            ["f", "i", "s", "n", "big", "bo"],
            {
                "f": [1.0, 2.0],
                "i": [1, 2],
                "s": ["x", "y"],
                "n": [1.0, None],
                "big": [2**53 + 1, 0],
                "bo": [True, False],
            },
        )
        assert chunk.numeric("f") is not None
        assert chunk.numeric("i").dtype == np.float64
        # Strings, NULLs, over-2**53 ints, and bools must stay on the exact path.
        for name in ("s", "n", "big", "bo"):
            assert chunk.numeric(name) is None, name

    def test_filter_and_head(self):
        chunk = Chunk.columnar(["a"], {"a": [10, 20, 30, 40]})
        kept = chunk.filter(np.array([True, False, True, False]))
        assert kept.values("a") == [10, 30]
        assert chunk.head(2).values("a") == [10, 20]
        assert chunk.head(9) is chunk
        row_backed = Chunk.of_rows([{"a": 1}, {"a": 2}])
        assert row_backed.filter(np.array([False, True])).to_rows() == [{"a": 2}]


# ---------------------------------------------------------------------------
# Execution modes
# ---------------------------------------------------------------------------


QUERIES = [
    "SELECT * FROM t WHERE a = 3",
    "SELECT * FROM t WHERE b >= 2.0 AND b < 5.0",
    "SELECT id, c FROM t WHERE c = 'tag1' AND a != 2",
    "SELECT COUNT(*) FROM t WHERE b > 0.0",
    "SELECT * FROM t ORDER BY b LIMIT 7",
    "SELECT * FROM t ORDER BY b DESC LIMIT 7",
    "SELECT id, a FROM t ORDER BY id DESC",
]


class TestExecutionModes:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_batched_and_row_modes_answer_identically(self, sql):
        batched = make_db("batched")
        row = make_db("row")
        got = batched.execute(sql).rows
        want = row.execute(sql).rows
        # Ordered queries must match exactly; others as multisets.
        if "ORDER BY" in sql:
            assert got == want, sql
        else:
            assert _canonical(got) == _canonical(want), sql

    def test_join_answers_identically_across_modes(self):
        answers = []
        for mode in ("batched", "row"):
            db = make_db(mode)
            db.execute("CREATE TABLE u (id integer PRIMARY KEY, w float)")
            for i in range(0, 300, 3):
                db.execute("INSERT INTO u (id, w) VALUES (?, ?)", (i, i / 10.0))
            answers.append(
                db.execute(
                    "SELECT t.id, t.a, u.w FROM t JOIN u ON t.id = u.id "
                    "WHERE t.a >= 2"
                ).rows
            )
        assert _canonical(answers[0]) == _canonical(answers[1])

    def test_row_mode_charges_interpretation_and_batched_does_not(self):
        sql = "SELECT COUNT(*) FROM t WHERE a >= 1"
        batched = make_db("batched")
        row = make_db("row")
        before = [db.stats.simulated_seconds for db in (batched, row)]
        batched.execute(sql)
        row.execute(sql)
        assert batched.stats.detail.get("row_execute", 0.0) == 0.0
        interpretation = row.stats.detail["row_execute"]
        assert interpretation > 0.0
        # Storage charges are identical: row mode only ADDS interpretation.
        batched_delta = batched.stats.simulated_seconds - before[0]
        row_delta = row.stats.simulated_seconds - before[1]
        assert row_delta - interpretation == pytest.approx(batched_delta)

    def test_row_mode_analyze_actuals_exceed_batched(self):
        sql = "SELECT COUNT(*) FROM t WHERE a >= 1"
        batched_rows = make_db("batched").execute(f"EXPLAIN ANALYZE {sql}").rows
        row_rows = make_db("row").execute(f"EXPLAIN ANALYZE {sql}").rows
        batched_scan = batched_rows[-1]
        row_scan = row_rows[-1]
        assert "SeqScan" in batched_scan["node"]
        assert row_scan["actual_seconds"] > batched_scan["actual_seconds"]

    def test_database_rejects_unknown_execution_mode(self):
        with pytest.raises(ValueError, match="unknown execution_mode"):
            Database(execution_mode="volcano")

    def test_connect_passes_execution_mode_through(self):
        with repro.connect(execution_mode="row") as conn:
            assert conn.database.execution_mode == "row"
            conn.execute("CREATE TABLE z (id integer PRIMARY KEY)")
            conn.execute("INSERT INTO z (id) VALUES (1)")
            assert conn.execute("SELECT COUNT(*) FROM z").scalar() == 1
        with pytest.raises(ConfigurationError, match="execution_mode"):
            with repro.connect() as conn:
                repro.connect(engine=conn.engine, execution_mode="row")


# ---------------------------------------------------------------------------
# EXPLAIN detail flags (golden plans)
# ---------------------------------------------------------------------------


class TestExplainFlags:
    def test_seq_scan_detail_carries_mode_flag(self):
        db = make_db("batched")
        detail = db.execute("EXPLAIN SELECT * FROM t").rows[-1]["detail"]
        assert detail.endswith("mode=batched")
        row_db = make_db("row")
        detail = row_db.execute("EXPLAIN SELECT * FROM t").rows[-1]["detail"]
        assert detail.endswith("mode=row")

    def test_index_probe_detail_carries_flags(self):
        db = make_db()
        db.execute("CREATE INDEX idx_ab ON t (a, b)")
        rows = db.execute(
            "EXPLAIN SELECT a, b FROM t WHERE a = 2 AND b >= 3.0"
        ).rows
        access = rows[-1]
        assert access["node"].strip() == (
            "SecondaryIndexRange(t.idx_ab: a = 2 AND b >= 3.0, covering)"
        )
        assert "covering=true; mode=batched" in access["detail"]
        assert "index-only, no heap fetches" in access["detail"]

    def test_non_covering_probe_has_no_covering_flag(self):
        db = make_db()
        db.execute("CREATE INDEX idx_ab ON t (a, b)")
        access = db.execute("EXPLAIN SELECT * FROM t WHERE a = 2 AND b >= 3.0").rows[-1]
        assert "covering" not in access["node"]
        assert "covering=true" not in access["detail"]
        assert "mode=batched" in access["detail"]

    def test_desc_fused_walk_golden_plan(self):
        db = make_db()
        db.execute("CREATE INDEX idx_b ON t (b)")
        rows = db.execute("EXPLAIN SELECT * FROM t ORDER BY b DESC LIMIT 5").rows
        access = rows[-1]
        assert access["node"].strip() == (
            "SecondaryIndexRange(t.idx_b: unbounded, order=b desc, limit=5)"
        )
        assert "Sort/TopK elided" in access["detail"]
        # No Sort/TopK node anywhere in the fused plan.
        assert not any(
            r["node"].strip().startswith(("Sort", "TopK")) for r in rows
        )


# ---------------------------------------------------------------------------
# Covering (index-only) scans
# ---------------------------------------------------------------------------


class TestCoveringScans:
    def _db(self, **kwargs) -> Database:
        db = make_db(**kwargs)
        db.execute("CREATE INDEX idx_ab ON t (a, b)")
        return db

    def test_covering_scan_matches_seqscan_reference(self):
        db = self._db()
        sql = "SELECT a, b FROM t WHERE a = 4 AND b > -2.0"
        assert "covering" in db.execute(f"EXPLAIN {sql}").rows[-1]["node"]
        chosen = db.execute(sql).rows
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert _canonical(chosen) == _canonical(reference)

    def test_heap_fetching_variant_matches_covering_variant(self):
        db = self._db()
        sql = "SELECT a, b FROM t WHERE a = 4 AND b > -2.0"
        covering_rows = db.execute(sql).rows
        heap_plan = Planner(db, use_covering_scans=False).plan_select(parse(sql))
        labels = [r["node"].strip() for r in heap_plan.explain_rows()]
        assert any(
            l.startswith("SecondaryIndexRange") and "covering" not in l for l in labels
        ), labels
        heap_rows, _ = heap_plan.run(db, [], None)
        assert _canonical(covering_rows) == _canonical(heap_rows)

    def test_covering_changes_the_costed_plan_choice(self):
        # On disk, every heap fetch is a random page read, so the heap-fetching
        # index variant loses to SeqScan here — but the covering variant skips
        # the fetches entirely and wins.  Same query, three different costs.
        db = self._db(cost_model=CostModel())
        sql = "SELECT a, b FROM t WHERE a = 4 AND b > -2.0"
        statement = parse(sql)
        covering_row = Planner(db).plan_select(statement).explain_rows()[-1]
        assert "covering" in covering_row["node"]
        heap_row = (
            Planner(db, use_covering_scans=False)
            .plan_select(statement)
            .explain_rows()[-1]
        )
        assert heap_row["node"].strip().startswith("SeqScan"), heap_row
        assert covering_row["estimated_seconds"] < heap_row["estimated_seconds"]

    def test_star_select_never_covers(self):
        db = self._db()
        access = db.execute("EXPLAIN SELECT * FROM t WHERE a = 4 AND b > 0.0").rows[-1]
        assert "covering" not in access["node"]  # c/id not in the index key

    def test_predicate_only_columns_still_allow_covering(self):
        # SELECT a WHERE a=.. AND b=..: b appears only in WHERE but is in the key.
        db = self._db()
        sql = "SELECT a FROM t WHERE a = 4 AND b = 0.0"
        access = db.execute(f"EXPLAIN {sql}").rows[-1]
        assert "covering" in access["node"]
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert _canonical(db.execute(sql).rows) == _canonical(reference)

    def test_covering_with_nulls_falls_back_correctly(self):
        db = self._db()
        db.execute("INSERT INTO t (id, a, b, c) VALUES (900, 4, NULL, 'x')")
        db.execute("INSERT INTO t (id, a, b, c) VALUES (901, NULL, 1.0, 'y')")
        sql = "SELECT a, b FROM t WHERE a = 4 AND b > -100.0"
        chosen = db.execute(sql).rows
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert _canonical(chosen) == _canonical(reference)

    def test_covering_ordered_walk(self):
        db = self._db()
        sql = "SELECT a, b FROM t WHERE a = 3 ORDER BY a LIMIT 4"
        access = db.execute(f"EXPLAIN {sql}").rows[-1]
        assert "covering" in access["node"]
        assert "no heap fetches" in access["detail"]
        chosen = db.execute(sql).rows
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        # Every row ties on the order column, so compare the order-column
        # sequence and check containment in the unlimited reference answer.
        assert [r["a"] for r in chosen] == [r["a"] for r in reference]
        unlimited_plan = Planner(db, use_index_paths=False).plan_select(
            parse("SELECT a, b FROM t WHERE a = 3 ORDER BY a")
        )
        unlimited, _ = unlimited_plan.run(db, [], None)
        pool = _canonical(unlimited)
        for row in _canonical(chosen):
            assert row in pool


# ---------------------------------------------------------------------------
# DESC fused top-k over the prev_leaf chain
# ---------------------------------------------------------------------------


class TestDescendingFusedTopK:
    def _db(self) -> Database:
        db = make_db()
        db.execute("CREATE INDEX idx_b ON t (b)")
        return db

    @pytest.mark.parametrize("direction", ["ASC", "DESC"])
    def test_fused_walk_matches_reference(self, direction):
        db = self._db()
        sql = f"SELECT * FROM t ORDER BY b {direction} LIMIT 9"
        access = db.execute(f"EXPLAIN {sql}").rows[-1]["node"].strip()
        assert access.startswith("SecondaryIndexRange"), access
        assert f"order=b {direction.lower()}" in access
        chosen = db.execute(sql).rows
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert [r["b"] for r in chosen] == [r["b"] for r in reference]

    def test_desc_estimate_symmetric_with_asc(self):
        db = self._db()
        asc = parse("SELECT * FROM t ORDER BY b ASC LIMIT 9")
        desc = parse("SELECT * FROM t ORDER BY b DESC LIMIT 9")
        planner = Planner(db)
        asc_cost = planner.plan_select(asc).root.estimated_seconds
        desc_cost = planner.plan_select(desc).root.estimated_seconds
        assert desc_cost == pytest.approx(asc_cost)

    def test_composite_desc_with_pinned_prefix(self):
        db = make_db()
        db.execute("CREATE INDEX idx_ab ON t (a, b)")
        sql = "SELECT * FROM t WHERE a = 5 ORDER BY b DESC LIMIT 6"
        access = db.execute(f"EXPLAIN {sql}").rows[-1]["node"].strip()
        assert access.startswith("SecondaryIndexRange"), access
        assert "order=b desc" in access
        chosen = db.execute(sql).rows
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert [r["b"] for r in chosen] == [r["b"] for r in reference]
