"""The plan-first query layer: golden plans, EXPLAIN ANALYZE, plan-time
diagnostics, prepared-statement caching, and pushed-down range scans."""

from __future__ import annotations

import json
import random

import pytest

import repro
from repro.db.costmodel import CostModel
from repro.db.database import Database
from repro.db.sql.parser import parse
from repro.db.sql.planner import Planner
from repro.exceptions import SQLExecutionError, SQLPlanningError
from repro.features.base import FeatureFunction
from repro.persist.snapshot import decode_vector, encode_vector
from repro.workloads import dblife_like

from tests.db.test_sql_serving import build_portal


def plan_nodes(executor, sql: str) -> list[str]:
    """The EXPLAIN node labels for one SELECT, indentation stripped."""
    statement = parse(sql)
    plan = executor.plan_select(statement)
    return [row["node"].strip() for row in plan.explain_rows()]


class PreFeaturizedColumn(FeatureFunction):
    """Decode a JSON-encoded sparse vector stored in the ``features`` column."""

    name = "prefeaturized"
    norm_q = 1.0

    def compute_feature(self, row):
        return decode_vector(json.loads(row["features"]))


def balanced_portal(entities: int = 160):
    """A SQL-only portal over a dataset whose view splits into both classes."""
    dataset = dblife_like(scale=0.08, seed=3)
    subset = dataset.entities[:entities]
    conn = repro.connect(architecture="mainmemory", strategy="hazy", approach="eager")
    conn.engine.registry.register("prefeaturized", PreFeaturizedColumn)
    conn.execute("CREATE TABLE entities (id integer PRIMARY KEY, features text)")
    conn.execute("CREATE TABLE examples (id integer, label integer)")
    conn.executemany(
        "INSERT INTO entities (id, features) VALUES (?, ?)",
        [
            (entity_id, json.dumps(encode_vector(features)))
            for entity_id, features in subset
        ],
    )
    conn.executemany(
        "INSERT INTO examples (id, label) VALUES (?, ?)",
        [
            (entity_id, dataset.labels[entity_id])
            for entity_id, _ in subset[: entities // 3]
        ],
    )
    conn.execute(
        "CREATE CLASSIFICATION VIEW labeled KEY id "
        "ENTITIES FROM entities KEY id "
        "EXAMPLES FROM examples KEY id LABEL label "
        "FEATURE FUNCTION prefeaturized USING SVM"
    )
    positives = conn.execute("SELECT COUNT(*) FROM labeled WHERE class = 1").scalar()
    assert 0 < positives < entities, "fixture must split into both classes"
    return conn


class TestGoldenPlans:
    """Stable plan text per read shape — EXPLAIN prints what the executor runs."""

    def test_table_shapes(self):
        db, _, _ = build_portal(count=20)
        executor = db.executor
        assert plan_nodes(executor, "SELECT * FROM papers WHERE id = 1") == [
            "Filter(id = 1)",
            "IndexRange(papers.id = 1)",
        ]
        assert plan_nodes(executor, "SELECT * FROM papers") == ["SeqScan(papers)"]
        assert plan_nodes(executor, "SELECT id FROM papers ORDER BY title DESC LIMIT 3") == [
            "Project(id)",
            "TopK(k=3, by=title desc)",
            "SeqScan(papers)",
        ]
        assert plan_nodes(executor, "SELECT COUNT(*) FROM papers WHERE id >= 5") == [
            "Aggregate(count)",
            "Filter(id >= 5)",
            "SeqScan(papers)",
        ]
        # Placeholders stay unbound in the plan: the cached form re-binds them.
        assert plan_nodes(executor, "SELECT * FROM papers WHERE id = ?") == [
            "Filter(id = ?)",
            "IndexRange(papers.id = ?)",
        ]

    def test_view_shapes_unserved_and_served(self):
        db, _, _ = build_portal(count=20)
        executor = db.executor
        shapes = {
            "SELECT class FROM labeled_papers WHERE id = 1": (
                "ViewPointRead(labeled_papers.id = 1)",
                "ServedPointRead(labeled_papers.id = 1)",
            ),
            "SELECT id FROM labeled_papers WHERE class = 'database'": (
                "ViewMembers(labeled_papers, class = 'database')",
                "ServedScatterGather(labeled_papers, class = 'database')",
            ),
            "SELECT id FROM labeled_papers WHERE class = 'database' AND id >= 5": (
                "ViewRangeRead(labeled_papers, class = 'database' AND id >= 5)",
                "ServedRangeScan(labeled_papers, class = 'database' AND id >= 5)",
            ),
            "SELECT * FROM labeled_papers": (
                "ViewScan(labeled_papers)",
                "ServedScatterGather(labeled_papers, contents)",
            ),
        }
        for sql, (unserved, _) in shapes.items():
            assert plan_nodes(executor, sql)[-1] == unserved, sql
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        try:
            for sql, (_, served) in shapes.items():
                assert plan_nodes(executor, sql)[-1] == served, sql
            assert plan_nodes(
                executor, "SELECT id FROM labeled_papers ORDER BY margin DESC LIMIT 4"
            ) == ["Project(id)", "TopK(k=4, by=margin desc)"]
        finally:
            db.execute("STOP SERVING labeled_papers")

    def test_join_shapes(self):
        db, _, _ = build_portal(count=20)
        executor = db.executor
        sql = (
            "SELECT title, class FROM papers JOIN labeled_papers "
            "ON papers.id = labeled_papers.id WHERE class = 'database'"
        )
        assert plan_nodes(executor, sql) == [
            "Project(title, class)",
            "HashJoin(id = id)",
            "SeqScan(papers)",
            "Filter(class = 'database')",
            "ViewMembers(labeled_papers, class = 'database')",
        ]
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        try:
            # Predicate on the view side: pushed below the join, scatter/gather.
            assert plan_nodes(executor, sql)[-1] == (
                "ServedScatterGather(labeled_papers, class = 'database')"
            )
            # No predicate on the served side: the probe keys drive the batcher.
            assert plan_nodes(
                executor,
                "SELECT title, class FROM papers JOIN labeled_papers "
                "ON papers.id = labeled_papers.id",
            ) == [
                "Project(title, class)",
                "HashJoin(id = id)",
                "SeqScan(papers)",
                "ServedPointRead(labeled_papers, batch)",
            ]
        finally:
            db.execute("STOP SERVING labeled_papers")

    def test_explain_prints_the_plan_the_executor_runs(self):
        """EXPLAIN output equals the planner's rendering of the same statement."""
        db, _, _ = build_portal(count=20)
        sql = "SELECT class FROM labeled_papers WHERE id = 1"
        explain = [row["node"] for row in db.execute(f"EXPLAIN {sql}").rows]
        planned = [
            row["node"] for row in db.executor.plan_select(parse(sql)).explain_rows()
        ]
        assert explain == planned


def indexed_table_db(rows: int = 400):
    """A main-memory database with an indexed measurement table."""
    db = Database(cost_model=CostModel.main_memory())
    db.execute(
        "CREATE TABLE readings (id integer PRIMARY KEY, margin float, station integer)"
    )
    rng = random.Random(11)
    db.executemany(
        "INSERT INTO readings (id, margin, station) VALUES (?, ?, ?)",
        [
            (i, round(rng.uniform(0.0, 1.0), 4), rng.randrange(8))
            for i in range(rows)
        ],
    )
    db.execute("CREATE INDEX idx_margin ON readings (margin)")
    return db


class TestSecondaryIndexPlans:
    """Golden plan text for the CREATE INDEX access paths."""

    def test_index_equality_and_range_shapes(self):
        db = indexed_table_db()
        executor = db.executor
        db.execute("CREATE INDEX idx_station ON readings (station)")
        assert plan_nodes(executor, "SELECT id FROM readings WHERE station = 3") == [
            "Project(id)",
            "Filter(station = 3)",
            "SecondaryIndexRange(readings.idx_station: station = 3)",
        ]
        assert plan_nodes(
            executor, "SELECT id FROM readings WHERE margin >= 0.9 AND margin < 0.95"
        ) == [
            "Project(id)",
            "Filter(margin >= 0.9 AND margin < 0.95)",
            "SecondaryIndexRange(readings.idx_margin: margin >= 0.9 AND margin < 0.95)",
        ]
        # Placeholders keep the index path; bounds bind at execution.
        assert plan_nodes(executor, "SELECT id FROM readings WHERE margin >= ?") == [
            "Project(id)",
            "Filter(margin >= ?)",
            "SecondaryIndexRange(readings.idx_margin: margin >= ?)",
        ]

    def test_primary_key_point_still_wins(self):
        db = indexed_table_db()
        assert plan_nodes(db.executor, "SELECT * FROM readings WHERE id = 7") == [
            "Filter(id = 7)",
            "IndexRange(readings.id = 7)",
        ]

    def test_index_ordered_topk_elides_sort(self):
        db = indexed_table_db()
        assert plan_nodes(
            db.executor, "SELECT id FROM readings ORDER BY margin DESC LIMIT 4"
        ) == [
            "Project(id)",
            "Limit(4)",
            "SecondaryIndexRange(readings.idx_margin: unbounded, order=margin desc, limit=4)",
        ]
        # ... and the ordered read equals the sort-based reference.
        got = db.execute("SELECT id, margin FROM readings ORDER BY margin ASC LIMIT 6").rows
        reference = sorted(
            db.execute("SELECT * FROM readings").rows, key=lambda row: row["margin"]
        )[:6]
        assert [row["margin"] for row in got] == [row["margin"] for row in reference]

    def test_index_backed_join_side(self):
        db = indexed_table_db()
        db.execute("CREATE TABLE stations (sid integer PRIMARY KEY, name text)")
        db.executemany(
            "INSERT INTO stations (sid, name) VALUES (?, ?)",
            [(i, f"s{i}") for i in range(8)],
        )
        sql = (
            "SELECT name, margin FROM stations JOIN readings "
            "ON stations.sid = readings.station WHERE margin >= 0.97"
        )
        assert plan_nodes(db.executor, sql) == [
            "Project(name, margin)",
            "HashJoin(sid = station)",
            "SeqScan(stations)",
            "Filter(margin >= 0.97)",
            "SecondaryIndexRange(readings.idx_margin: margin >= 0.97)",
        ]
        joined = db.execute(sql).rows
        reference = [
            (f"s{row['station']}", row["margin"])
            for row in db.execute("SELECT * FROM readings").rows
            if row["margin"] >= 0.97
        ]
        assert sorted((row["name"], row["margin"]) for row in joined) == sorted(reference)

    def test_unselective_predicate_keeps_seq_scan(self):
        db = indexed_table_db()
        assert plan_nodes(db.executor, "SELECT id FROM readings WHERE margin >= 0.01")[
            -1
        ] == "SeqScan(readings)"

    def test_explain_equals_executed_tree_for_index_plans(self):
        db = indexed_table_db()
        sql = "SELECT id FROM readings WHERE margin >= 0.9"
        explain = [row["node"] for row in db.execute(f"EXPLAIN {sql}").rows]
        analyzed = [row["node"] for row in db.execute(f"EXPLAIN ANALYZE {sql}").rows]
        planned = [
            row["node"] for row in db.executor.plan_select(parse(sql)).explain_rows()
        ]
        assert explain == analyzed == planned

    def test_create_and_drop_index_replan_on_shared_engine_connection(self):
        """Index DDL on one connection re-plans the other's cached plans."""
        conn = repro.connect(cost_model=CostModel.main_memory())
        other = repro.connect(engine=conn.engine)
        try:
            conn.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
            conn.executemany(
                "INSERT INTO t (id, v) VALUES (?, ?)", [(i, i % 50) for i in range(300)]
            )
            sql = "SELECT id FROM t WHERE v = 7"
            before = other.execute(sql).fetchall()  # caches the SeqScan plan
            assert other.prepare(sql).plan.explain_rows()[-1]["node"].strip() == (
                "SeqScan(t)"
            )
            conn.execute("CREATE INDEX idx_v ON t (v)")
            during = other.execute(sql).fetchall()
            leaf = other.prepare(sql).plan.explain_rows()[-1]["node"].strip()
            assert leaf == "SecondaryIndexRange(t.idx_v: v = 7)"
            conn.execute("DROP INDEX idx_v")
            after = other.execute(sql).fetchall()
            assert other.prepare(sql).plan.explain_rows()[-1]["node"].strip() == (
                "SeqScan(t)"
            )
            assert sorted(r["id"] for r in before) == sorted(
                r["id"] for r in during
            ) == sorted(r["id"] for r in after)
        finally:
            other.close()
            conn.close()


class TestExplainAnalyze:
    def test_actual_vs_estimated_per_node(self):
        db, _, _ = build_portal(count=20)
        rows = db.execute("EXPLAIN ANALYZE SELECT * FROM papers WHERE id = 1").rows
        assert [row["node"].strip() for row in rows] == [
            "Filter(id = 1)",
            "IndexRange(papers.id = 1)",
        ]
        for row in rows:
            assert set(row) == {
                "node", "estimated_seconds", "actual_seconds", "rows",
                "pages_read", "pages_written", "detail",
            }
        # The point lookup actually charged the ledger; the filter is CPU-free.
        index_row = rows[1]
        assert index_row["rows"] == 1
        assert index_row["actual_seconds"] > 0
        assert rows[0]["actual_seconds"] == pytest.approx(0.0)
        # The statement's buffer-pool delta rides on the root row only.
        assert rows[0]["pages_read"] >= 0
        assert rows[1]["pages_read"] is None

    def test_analyze_executes_through_the_served_path(self):
        db, engine, documents = build_portal()
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        try:
            rows = db.execute(
                "EXPLAIN ANALYZE SELECT class FROM labeled_papers WHERE id = ?",
                (documents[0].entity_id,),
            ).rows
            leaf = rows[-1]
            assert leaf["node"].strip() == "ServedPointRead(labeled_papers.id = ?)"
            assert leaf["rows"] == 1
            assert leaf["actual_seconds"] > 0
        finally:
            db.execute("STOP SERVING labeled_papers")

    def test_analyze_rejects_dml(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(SQLExecutionError, match="EXPLAIN ANALYZE supports SELECT"):
            db.execute("EXPLAIN ANALYZE INSERT INTO papers (id, title) VALUES (999, 'x')")
        assert db.execute("SELECT COUNT(*) FROM papers WHERE id = 999").scalar() == 0


class TestExplainAnalyzeCacheConsistency:
    """Regression: a cached EXPLAIN [ANALYZE] plan must re-plan after DDL.

    EXPLAIN goes through the prepared-statement cache like any SELECT; when a
    DDL statement (here ``CREATE INDEX``, which changes access paths without
    changing the namespace) bumps the catalog version on another shared-engine
    connection, the next EXPLAIN ANALYZE must report the *re-planned* tree,
    never the stale cached one.
    """

    def test_explain_analyze_reports_replanned_tree_after_ddl(self):
        conn = repro.connect(cost_model=CostModel.main_memory())
        other = repro.connect(engine=conn.engine)
        try:
            conn.execute("CREATE TABLE t (id integer PRIMARY KEY, v integer)")
            conn.executemany(
                "INSERT INTO t (id, v) VALUES (?, ?)", [(i, i % 40) for i in range(400)]
            )
            sql = "EXPLAIN ANALYZE SELECT id FROM t WHERE v = 3"
            before = other.execute(sql).fetchall()  # caches the plan on `other`
            assert before[-1]["node"].strip() == "SeqScan(t)"
            assert other.prepare(sql).plan is not None  # EXPLAIN really is cached
            conn.execute("CREATE INDEX idx_v ON t (v)")  # bumps the catalog version
            after = other.execute(sql).fetchall()
            assert after[-1]["node"].strip() == "SecondaryIndexRange(t.idx_v: v = 3)"
            # The actuals prove the re-planned tree was the one executed.
            assert after[-1]["rows"] == 10
            conn.execute("DROP INDEX idx_v")
            reverted = other.execute(sql).fetchall()
            assert reverted[-1]["node"].strip() == "SeqScan(t)"
        finally:
            other.close()
            conn.close()

    def test_executor_honours_version_guard_on_supplied_explain_plan(self):
        """Even a directly supplied stale plan is rebuilt by the executor."""
        db = indexed_table_db()
        statement = parse("EXPLAIN ANALYZE SELECT id FROM readings WHERE margin >= 0.9")
        stale = db.executor.plan_select(statement.statement)
        db.execute("DROP INDEX idx_margin")  # version moves; `stale` holds the index
        rows = db.executor.execute(statement, plan=stale).rows
        assert rows[-1]["node"].strip() == "SeqScan(readings)"
        assert rows[-1]["rows"] > 0


class TestPlanTimeDiagnostics:
    """Semantic errors surface at plan time with position/token diagnostics."""

    def test_unknown_column_on_served_view_rejected_at_plan_time(self):
        db, _, _ = build_portal(count=20)
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        try:
            sql = "SELECT venue FROM labeled_papers WHERE id = 1"
            with pytest.raises(SQLPlanningError) as excinfo:
                db.execute(sql)
            assert excinfo.value.token == "venue"
            assert excinfo.value.position == sql.index("venue")
        finally:
            db.execute("STOP SERVING labeled_papers")

    def test_unknown_where_column_carries_position(self):
        db, _, _ = build_portal(count=20)
        sql = "SELECT id FROM labeled_papers WHERE margins = 1"
        with pytest.raises(SQLPlanningError) as excinfo:
            db.execute(sql)
        assert excinfo.value.token == "margins"
        assert excinfo.value.position == sql.index("margins")

    def test_unknown_table_column_rejected_at_plan_time(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(SQLPlanningError, match="unknown column 'venue'"):
            db.execute("SELECT venue FROM papers")
        with pytest.raises(SQLPlanningError, match="ORDER BY"):
            db.execute("SELECT id FROM papers ORDER BY venue")

    def test_margin_outside_topk_rejected(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(SQLPlanningError, match="margin"):
            db.execute("SELECT margin FROM labeled_papers WHERE id = 1")
        with pytest.raises(SQLPlanningError, match="ORDER BY margin"):
            db.execute("SELECT id FROM labeled_papers ORDER BY margin DESC")

    def test_bad_qualifier_rejected(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(SQLPlanningError, match="unknown table qualifier"):
            db.execute("SELECT other.id FROM papers")

    def test_ambiguous_join_column_rejected(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(SQLPlanningError, match="ambiguous column 'id'"):
            db.execute(
                "SELECT id FROM papers JOIN labeled_papers "
                "ON papers.id = labeled_papers.id"
            )


class TestPreparedStatements:
    """The connection-level LRU plan cache: parse and plan once per SQL text."""

    def test_repeat_execution_plans_once(self, monkeypatch):
        conn = balanced_portal()
        try:
            calls = {"count": 0}
            original = Planner.plan_select

            def counting(self, statement):
                calls["count"] += 1
                return original(self, statement)

            monkeypatch.setattr(Planner, "plan_select", counting)
            sql = "SELECT id, class FROM labeled WHERE id = ?"
            first = conn.execute(sql, (3,)).fetchall()
            second = conn.execute(sql, (5,)).fetchall()
            third = conn.execute(sql, (3,)).fetchall()
            assert calls["count"] == 1  # planned once, re-bound thereafter
            assert first == third
            assert first[0]["id"] == 3 and second[0]["id"] == 5
        finally:
            conn.close()

    def test_executemany_reuses_the_plan(self, monkeypatch):
        conn = balanced_portal()
        try:
            calls = {"count": 0}
            original = Planner.plan_select

            def counting(self, statement):
                calls["count"] += 1
                return original(self, statement)

            monkeypatch.setattr(Planner, "plan_select", counting)
            cursor = conn.executemany(
                "SELECT class FROM labeled WHERE id = ?", [(1,), (2,), (3,)]
            )
            assert calls["count"] == 1
            assert cursor.rowcount == 3
        finally:
            conn.close()

    def test_serving_lifecycle_invalidates_cached_plans(self):
        conn = balanced_portal()
        try:
            sql = "SELECT class FROM labeled WHERE id = ?"
            conn.execute(sql, (1,))
            assert conn.prepare(sql).plan.root.walk  # cached
            cached_before = conn.prepare(sql)
            conn.execute("SERVE VIEW labeled WITH (shards = 2)")
            cached_after = conn.prepare(sql)
            assert cached_after is not cached_before  # cache was cleared
            leaf = cached_after.plan.explain_rows()[-1]["node"].strip()
            assert leaf.startswith("ServedPointRead")
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_stale_plan_stays_correct_across_serving_changes(self):
        """A plan cached by one connection survives another connection's
        SERVE VIEW / STOP SERVING: the nodes re-resolve serving state."""
        conn = balanced_portal()
        other = repro.connect(engine=conn.engine)
        try:
            sql = "SELECT class FROM labeled WHERE id = 7"
            before = other.execute(sql).fetchall()
            conn.execute("SERVE VIEW labeled WITH (shards = 2)")
            during = other.execute(sql).fetchall()  # same cached plan, served now
            conn.execute("STOP SERVING labeled")
            after = other.execute(sql).fetchall()
            assert before == during == after
        finally:
            other.close()
            conn.close()

    def test_cache_is_lru_bounded(self):
        conn = repro.connect(plan_cache_size=2)
        try:
            conn.execute("CREATE TABLE t (a integer PRIMARY KEY)")
            conn.execute("SELECT * FROM t")
            conn.execute("SELECT a FROM t")
            conn.execute("SELECT COUNT(*) FROM t")
            assert len(conn._statements) == 2
        finally:
            conn.close()

    def test_ddl_on_another_connection_invalidates_cached_plans(self):
        """The catalog version guards cached plans across shared-engine
        connections: a table dropped and recreated elsewhere must not be read
        through a stale plan holding the dead Table object."""
        conn = repro.connect()
        other = repro.connect(engine=conn.engine)
        try:
            conn.execute("CREATE TABLE t (a integer PRIMARY KEY, b integer)")
            conn.execute("INSERT INTO t (a, b) VALUES (1, 10)")
            assert other.execute("SELECT * FROM t").fetchall() == [{"a": 1, "b": 10}]
            conn.execute("DROP TABLE t")
            conn.execute("CREATE TABLE t (a integer PRIMARY KEY, b integer)")
            conn.execute("INSERT INTO t (a, b) VALUES (2, 20)")
            # `other` still holds the old plan in its cache; the executor
            # re-plans because the catalog version moved.
            assert other.execute("SELECT * FROM t").fetchall() == [{"a": 2, "b": 20}]
            # ... and prepare() refreshed the cached plan in place, so the hot
            # path is not stuck re-planning on every execution.
            refreshed = other.prepare("SELECT * FROM t")
            assert refreshed.plan.catalog_version == other.database.catalog.version
        finally:
            other.close()
            conn.close()


class TestRangePushdown:
    """Pushed-down range scans return byte-identical rows to post-filtering."""

    @staticmethod
    def _post_filter(conn, low):
        """The old access path: materialize the whole view, filter client-side."""
        rows = conn.execute("SELECT * FROM labeled").fetchall()
        return sorted(
            (row for row in rows if row["class"] == 1 and row["id"] >= low),
            key=lambda row: row["id"],
        )

    def test_unserved_and_served_identical_to_post_filter(self):
        conn = balanced_portal()
        try:
            low = 40
            sql = "SELECT * FROM labeled WHERE class = 1 AND id >= ? ORDER BY id"
            expected = self._post_filter(conn, low)
            assert expected, "fixture must produce in-range members"
            unserved = conn.execute(sql, (low,)).fetchall()
            assert unserved == expected
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            served = conn.execute(sql, (low,)).fetchall()
            assert served == expected
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()

    def test_range_operators_and_bounds(self):
        conn = balanced_portal()
        try:
            rows = conn.execute("SELECT * FROM labeled").fetchall()
            members = sorted(row["id"] for row in rows if row["class"] == 1)
            low, high = members[1], members[-2]
            got = conn.execute(
                "SELECT id FROM labeled WHERE class = 1 AND id > ? AND id <= ? ORDER BY id",
                (low, high),
            ).fetchall()
            assert [row["id"] for row in got] == [
                m for m in members if low < m <= high
            ]
        finally:
            conn.close()

    def test_served_range_scan_cheaper_than_contents(self):
        """The shard operator beats materialize-and-post-filter on the ledger."""
        conn = balanced_portal()
        try:
            conn.execute("SERVE VIEW labeled WITH (shards = 3)")
            server = conn.engine.view("labeled").server
            start = server.shards.simulated_seconds()
            conn.execute("SELECT id FROM labeled WHERE class = 1 AND id >= 40")
            pushed = server.shards.simulated_seconds() - start
            start = server.shards.simulated_seconds()
            conn.execute("SELECT * FROM labeled").fetchall()
            materialized = server.shards.simulated_seconds() - start
            assert pushed * 2 <= materialized
            conn.execute("STOP SERVING labeled")
        finally:
            conn.close()
