"""Parse-error diagnostics: every syntax error reports the offending token
and its character position, machine-readably."""

from __future__ import annotations

import pytest

from repro.db.sql.parser import parse
from repro.exceptions import SQLSyntaxError


def parse_error(sql: str) -> SQLSyntaxError:
    with pytest.raises(SQLSyntaxError) as excinfo:
        parse(sql)
    return excinfo.value


class TestServingStatementDiagnostics:
    def test_serve_missing_view_keyword(self):
        sql = "SERVE TABLE papers"
        error = parse_error(sql)
        assert error.token == "TABLE"
        assert error.position == sql.index("TABLE")
        assert "expected VIEW" in str(error)
        assert f"position {error.position}" in str(error)

    def test_serve_with_missing_equals(self):
        sql = "SERVE VIEW v WITH (shards 4)"
        error = parse_error(sql)
        assert error.token == "4"
        assert error.position == sql.index("4)")
        assert "WITH clause" in str(error)

    def test_serve_with_non_literal_value(self):
        sql = "SERVE VIEW v WITH (shards = lots)"
        error = parse_error(sql)
        assert error.token == "lots"
        assert error.position == sql.index("lots")

    def test_stop_without_serving(self):
        sql = "STOP THE SERVER"
        error = parse_error(sql)
        assert error.token == "THE"
        assert error.position == sql.index("THE")
        assert "expected SERVING" in str(error)

    def test_checkpoint_missing_to(self):
        sql = "CHECKPOINT VIEW v INTO '/tmp/x'"
        error = parse_error(sql)
        assert error.token == "INTO"
        assert error.position == sql.index("INTO")

    def test_checkpoint_path_must_be_string(self):
        sql = "CHECKPOINT VIEW v TO ckpath"
        error = parse_error(sql)
        assert error.token == "ckpath"
        assert error.position == sql.index("ckpath")
        assert "string literal" in str(error)

    def test_restore_missing_from(self):
        sql = "RESTORE VIEW v '/tmp/x'"
        error = parse_error(sql)
        assert error.token == "/tmp/x"
        assert error.position == sql.index("'/tmp/x'")
        assert "expected FROM" in str(error)

    def test_restore_trailing_garbage(self):
        sql = "RESTORE VIEW v FROM '/tmp/x' quickly"
        error = parse_error(sql)
        assert error.token == "quickly"
        assert error.position == sql.index("quickly")
        assert "trailing" in str(error)


class TestPreExistingStatementDiagnostics:
    def test_unknown_statement_start(self):
        sql = "VACUUM papers"
        error = parse_error(sql)
        assert error.token == "VACUUM"
        assert error.position == 0

    def test_select_missing_from(self):
        sql = "SELECT id papers"
        error = parse_error(sql)
        assert error.token == "papers"
        assert error.position == sql.index("papers")

    def test_insert_missing_values_keyword(self):
        sql = "INSERT INTO t (a) VALUE (1)"
        error = parse_error(sql)
        assert error.token == "VALUE"
        assert error.position == sql.index("VALUE")

    def test_where_missing_operator(self):
        sql = "SELECT * FROM t WHERE id 5"
        error = parse_error(sql)
        assert error.token == "5"
        assert error.position == sql.index("5")
        assert "comparison operator" in str(error)

    def test_limit_requires_integer(self):
        sql = "SELECT * FROM t LIMIT 'ten'"
        error = parse_error(sql)
        assert error.token == "ten"
        assert error.position == sql.index("'ten'")

    def test_update_set_missing_equals(self):
        sql = "UPDATE t SET a 1"
        error = parse_error(sql)
        assert error.token == "1"
        assert error.position == sql.index("1")
        assert "SET clause" in str(error)

    def test_lexer_unexpected_character(self):
        sql = "SELECT * FROM t WHERE id = @"
        error = parse_error(sql)
        assert error.token == "@"
        assert error.position == sql.index("@")

    def test_lexer_unterminated_string(self):
        sql = "SELECT * FROM t WHERE name = 'open"
        error = parse_error(sql)
        assert error.position == sql.index("'open")
