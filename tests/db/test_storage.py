"""Unit tests for pages, the buffer pool, heap files, and the cost model."""

from __future__ import annotations

import pytest

from repro.db.buffer_pool import BufferPool, DiskManager, IOStatistics
from repro.db.costmodel import CostModel
from repro.db.heap import HeapFile
from repro.db.page import Page, RecordId
from repro.exceptions import PageError


class TestCostModel:
    def test_main_memory_has_no_io_cost(self):
        model = CostModel.main_memory()
        assert model.random_page_read == 0.0
        assert model.sequential_page_write == 0.0
        assert model.tuple_cpu > 0.0

    def test_sort_cost_is_superlinear(self):
        model = CostModel()
        assert model.sort_cost(10_000) > 10 * model.sort_cost(1_000) * 0.9
        assert model.sort_cost(1) > 0.0

    def test_scan_cost_combines_pages_and_tuples(self):
        model = CostModel()
        assert model.scan_cost(10, 1000) == pytest.approx(
            10 * model.sequential_page_read + 1000 * model.tuple_cpu
        )

    def test_dot_product_cost_scales_with_nonzeros(self):
        model = CostModel()
        assert model.dot_product_cost(100) == pytest.approx(100 * model.dot_product_per_nonzero)
        assert model.dot_product_cost(0) == pytest.approx(model.dot_product_per_nonzero)

    def test_random_io_more_expensive_than_sequential(self):
        model = CostModel()
        assert model.random_page_read > model.sequential_page_read


class TestPage:
    def test_insert_and_read(self):
        page = Page(0, capacity_bytes=1000)
        slot = page.insert({"id": 1}, row_size=100)
        assert page.read(slot) == {"id": 1}
        assert page.live_row_count() == 1

    def test_capacity_enforced(self):
        page = Page(0, capacity_bytes=150)
        page.insert({"id": 1}, row_size=100)
        assert not page.fits(100)
        with pytest.raises(PageError):
            page.insert({"id": 2}, row_size=100)

    def test_update_in_place(self):
        page = Page(0, capacity_bytes=1000)
        slot = page.insert({"id": 1, "label": -1}, row_size=100)
        page.update(slot, {"id": 1, "label": 1}, row_size=100)
        assert page.read(slot)["label"] == 1

    def test_update_overflow_rejected(self):
        page = Page(0, capacity_bytes=150)
        slot = page.insert({"id": 1}, row_size=100)
        with pytest.raises(PageError):
            page.update(slot, {"id": 1}, row_size=200)

    def test_delete_leaves_tombstone(self):
        page = Page(0, capacity_bytes=1000)
        slot_a = page.insert({"id": 1}, row_size=100)
        slot_b = page.insert({"id": 2}, row_size=100)
        page.delete(slot_a)
        assert page.live_row_count() == 1
        assert page.read(slot_b) == {"id": 2}
        with pytest.raises(PageError):
            page.read(slot_a)

    def test_bad_slot_raises(self):
        with pytest.raises(PageError):
            Page(0, 100).read(5)

    def test_invalid_capacity(self):
        with pytest.raises(PageError):
            Page(0, 0)

    def test_dirty_flag_set_on_write(self):
        page = Page(0, 1000)
        assert not page.dirty
        page.insert({"id": 1}, 10)
        assert page.dirty


class TestBufferPool:
    def test_allocation_does_not_charge_reads(self):
        pool = BufferPool(CostModel())
        pool.allocate_page()
        assert pool.stats.page_reads == 0

    def test_fetch_resident_is_a_hit(self):
        pool = BufferPool(CostModel())
        page = pool.allocate_page()
        pool.fetch(page.page_id)
        assert pool.stats.buffer_hits == 1
        assert pool.stats.page_reads == 0

    def test_eviction_and_refetch_charges_io(self):
        pool = BufferPool(CostModel(), capacity_pages=2)
        pages = [pool.allocate_page() for _ in range(3)]
        # First page was evicted (clean), refetching charges a read.
        pool.fetch(pages[0].page_id)
        assert pool.stats.page_reads == 1
        assert pool.stats.simulated_seconds > 0.0

    def test_dirty_eviction_charges_write(self):
        pool = BufferPool(CostModel(), capacity_pages=1)
        first = pool.allocate_page()
        first.insert({"x": 1}, 10)
        pool.mark_dirty(first.page_id)
        pool.allocate_page()  # evicts the dirty first page
        assert pool.stats.page_writes == 1

    def test_flush_all_writes_dirty_pages_once(self):
        pool = BufferPool(CostModel())
        page = pool.allocate_page()
        page.insert({"x": 1}, 10)
        pool.mark_dirty(page.page_id)
        pool.flush_all()
        assert pool.stats.page_writes == 1
        pool.flush_all()
        assert pool.stats.page_writes == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(PageError):
            BufferPool(CostModel(), capacity_pages=0)

    def test_unknown_page_raises(self):
        with pytest.raises(PageError):
            DiskManager(1024).get(99)

    def test_statistics_snapshot_and_diff(self):
        stats = IOStatistics()
        stats.charge(1.0, "x")
        snapshot = stats.snapshot()
        stats.charge(2.0, "x")
        delta = stats.diff(snapshot)
        assert delta.simulated_seconds == pytest.approx(2.0)
        assert delta.detail["x"] == pytest.approx(2.0)


def _make_heap(capacity_pages=None) -> tuple[HeapFile, BufferPool]:
    pool = BufferPool(CostModel(), capacity_pages=capacity_pages)
    heap = HeapFile(pool, sizer=lambda row: 100)
    return heap, pool


class TestHeapFile:
    def test_insert_read_roundtrip(self):
        heap, _ = _make_heap()
        rid = heap.insert({"id": 1})
        assert heap.read(rid) == {"id": 1}
        assert heap.row_count() == 1

    def test_rows_span_multiple_pages(self):
        heap, pool = _make_heap()
        for i in range(200):
            heap.insert({"id": i})
        assert heap.page_count() > 1
        assert heap.row_count() == 200

    def test_scan_returns_rows_in_insertion_order(self):
        heap, _ = _make_heap()
        for i in range(50):
            heap.insert({"id": i})
        ids = [row["id"] for _, row in heap.scan()]
        assert ids == list(range(50))

    def test_update_in_place(self):
        heap, _ = _make_heap()
        rid = heap.insert({"id": 1, "label": -1})
        heap.update(rid, {"id": 1, "label": 1})
        assert heap.read(rid)["label"] == 1

    def test_delete_reduces_row_count(self):
        heap, _ = _make_heap()
        rid = heap.insert({"id": 1})
        heap.delete(rid)
        assert heap.row_count() == 0
        assert list(heap.scan()) == []

    def test_bulk_rebuild_replaces_contents(self):
        heap, _ = _make_heap()
        for i in range(10):
            heap.insert({"id": i})
        rids = heap.bulk_rebuild([{"id": 100 + i} for i in range(5)])
        assert heap.row_count() == 5
        assert [heap.read(rid)["id"] for rid in rids] == [100, 101, 102, 103, 104]

    def test_oversized_row_rejected(self):
        pool = BufferPool(CostModel())
        heap = HeapFile(pool, sizer=lambda row: 100_000)
        with pytest.raises(PageError):
            heap.insert({"huge": True})

    def test_reads_and_writes_are_charged(self):
        heap, pool = _make_heap()
        rid = heap.insert({"id": 1})
        before = pool.stats.simulated_seconds
        heap.read(rid)
        assert pool.stats.simulated_seconds > before

    def test_record_ids_are_orderable(self):
        assert RecordId(0, 1) < RecordId(1, 0)
        assert RecordId(1, 2) > RecordId(1, 1)
