"""Tests for the trigger-dispatcher hook (enqueue-instead-of-inline firing)."""

from __future__ import annotations

from repro.db.buffer_pool import BufferPool
from repro.db.costmodel import CostModel
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.triggers import Trigger, TriggerEvent, TriggerSet
from repro.db.types import DataType


def make_table() -> Table:
    schema = TableSchema(
        "papers",
        [Column("id", DataType.INTEGER, nullable=False), Column("title", DataType.TEXT)],
        primary_key="id",
    )
    return Table(schema, BufferPool(CostModel()))


def test_dispatcher_consumes_firings():
    table = make_table()
    inline = []
    queued = []
    table.add_trigger(
        Trigger("t", TriggerEvent.AFTER_INSERT, lambda n, new, old: inline.append(new))
    )
    table.triggers.set_dispatcher(
        lambda trigger, event, name, new, old: queued.append((trigger.name, new)) or True
    )
    table.insert({"id": 1, "title": "x"})
    assert inline == []
    assert queued == [("t", {"id": 1, "title": "x"})]


def test_dispatcher_can_pass_through_selectively():
    table = make_table()
    inline = []
    queued = []
    table.add_trigger(
        Trigger("mine", TriggerEvent.AFTER_INSERT, lambda n, new, old: inline.append("mine"))
    )
    table.add_trigger(
        Trigger("other", TriggerEvent.AFTER_INSERT, lambda n, new, old: inline.append("other"))
    )

    def dispatcher(trigger, event, name, new, old):
        if trigger.name == "mine":
            queued.append(trigger.name)
            return True
        return False

    table.triggers.set_dispatcher(dispatcher)
    table.insert({"id": 1})
    assert inline == ["other"]
    assert queued == ["mine"]


def test_clear_dispatcher_restores_inline_execution():
    table = make_table()
    inline = []
    table.add_trigger(
        Trigger("t", TriggerEvent.AFTER_INSERT, lambda n, new, old: inline.append(1))
    )
    table.triggers.set_dispatcher(lambda *args: True)
    table.insert({"id": 1})
    assert inline == []
    assert table.triggers.has_dispatcher
    table.triggers.clear_dispatcher()
    table.insert({"id": 2})
    assert inline == [1]
    assert not table.triggers.has_dispatcher


def test_dispatcher_sees_update_and_delete_context():
    table = make_table()
    events = []
    table.add_trigger(Trigger("u", TriggerEvent.AFTER_UPDATE, lambda n, new, old: None))
    table.add_trigger(Trigger("d", TriggerEvent.AFTER_DELETE, lambda n, new, old: None))
    table.triggers.set_dispatcher(
        lambda trigger, event, name, new, old: events.append((event, new, old)) or True
    )
    table.insert({"id": 1, "title": "a"})
    table.update_by_key(1, {"title": "b"})
    table.delete_by_key(1)
    update_events = [entry for entry in events if entry[0] is TriggerEvent.AFTER_UPDATE]
    delete_events = [entry for entry in events if entry[0] is TriggerEvent.AFTER_DELETE]
    assert update_events[0][1]["title"] == "b" and update_events[0][2]["title"] == "a"
    assert delete_events[0][1] is None and delete_events[0][2]["id"] == 1


def test_standalone_trigger_set():
    triggers = TriggerSet()
    fired = []
    triggers.add(Trigger("a", TriggerEvent.AFTER_INSERT, lambda n, new, old: fired.append(1)))
    triggers.set_dispatcher(lambda *args: False)  # pass-through dispatcher
    triggers.fire(TriggerEvent.AFTER_INSERT, "t", {}, None)
    assert fired == [1]
