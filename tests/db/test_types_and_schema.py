"""Unit tests for column types, value coercion, and table schemas."""

from __future__ import annotations

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.types import DataType, coerce_value, estimate_value_size
from repro.exceptions import SchemaError
from repro.linalg import SparseVector


class TestDataType:
    def test_aliases_resolve(self):
        assert DataType.from_name("int") is DataType.INTEGER
        assert DataType.from_name("VARCHAR") is DataType.TEXT
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("bool") is DataType.BOOLEAN
        assert DataType.from_name("vector") is DataType.VECTOR

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            DataType.from_name("geometry")


class TestCoercion:
    def test_none_passes_through(self):
        assert coerce_value(None, DataType.INTEGER) is None

    def test_integer_coercion(self):
        assert coerce_value("42", DataType.INTEGER) == 42
        assert coerce_value(7.0, DataType.INTEGER) == 7

    def test_non_integral_float_rejected_for_integer(self):
        with pytest.raises(SchemaError):
            coerce_value(1.5, DataType.INTEGER)

    def test_float_coercion(self):
        assert coerce_value("2.5", DataType.FLOAT) == 2.5

    def test_text_coercion(self):
        assert coerce_value(10, DataType.TEXT) == "10"

    def test_boolean_from_strings(self):
        assert coerce_value("true", DataType.BOOLEAN) is True
        assert coerce_value("F", DataType.BOOLEAN) is False
        with pytest.raises(SchemaError):
            coerce_value("maybe", DataType.BOOLEAN)

    def test_vector_accepts_sparse_and_dict(self):
        assert isinstance(coerce_value(SparseVector({0: 1.0}), DataType.VECTOR), SparseVector)
        assert coerce_value({1: 2.0}, DataType.VECTOR)[1] == 2.0

    def test_vector_rejects_other_types(self):
        with pytest.raises(SchemaError):
            coerce_value("not a vector", DataType.VECTOR)

    def test_bad_numeric_text_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("abc", DataType.FLOAT)

    def test_size_estimates_are_positive_and_ordered(self):
        assert estimate_value_size(None) < estimate_value_size(1)
        assert estimate_value_size("a short string") > estimate_value_size(1)
        assert estimate_value_size(SparseVector({i: 1.0 for i in range(50)})) > estimate_value_size(
            SparseVector({0: 1.0})
        )


def paper_schema() -> TableSchema:
    return TableSchema(
        "papers",
        [
            Column("id", DataType.INTEGER, nullable=False),
            Column("title", DataType.TEXT),
            Column("cites", DataType.INTEGER),
        ],
        primary_key="id",
    )


class TestTableSchema:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER), Column("A", DataType.TEXT)])

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INTEGER)], primary_key="b")

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad name!", DataType.TEXT)

    def test_column_lookup_case_insensitive(self):
        schema = paper_schema()
        assert schema.column("TITLE").name == "title"
        assert schema.has_column("Id")

    def test_validate_row_fills_missing_with_null(self):
        schema = paper_schema()
        row = schema.validate_row({"id": 1, "title": "Hazy"})
        assert row == {"id": 1, "title": "Hazy", "cites": None}

    def test_validate_row_rejects_unknown_columns(self):
        with pytest.raises(SchemaError):
            paper_schema().validate_row({"id": 1, "venue": "VLDB"})

    def test_validate_row_coerces_types(self):
        row = paper_schema().validate_row({"id": "5", "cites": "10"})
        assert row["id"] == 5
        assert row["cites"] == 10

    def test_not_null_enforced(self):
        schema = TableSchema(
            "t", [Column("a", DataType.INTEGER, nullable=False)], primary_key=None
        )
        with pytest.raises(SchemaError):
            schema.validate_row({})

    def test_primary_key_may_not_be_null(self):
        with pytest.raises(SchemaError):
            paper_schema().validate_row({"title": "no id"})

    def test_row_size_scales_with_content(self):
        schema = paper_schema()
        small = schema.row_size({"id": 1, "title": "x", "cites": 0})
        large = schema.row_size({"id": 1, "title": "x" * 500, "cites": 0})
        assert large > small

    def test_project(self):
        schema = paper_schema()
        row = schema.validate_row({"id": 1, "title": "Hazy"})
        assert schema.project(row, ["title"]) == {"title": "Hazy"}

    def test_column_names_in_order(self):
        assert paper_schema().column_names() == ["id", "title", "cites"]
