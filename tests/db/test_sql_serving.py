"""The declarative serving surface: SERVE / STOP SERVING / CHECKPOINT /
RESTORE / EXPLAIN statements and SELECT routing through the ViewServer."""

from __future__ import annotations

import pytest

from repro.core.engine import HazyEngine
from repro.db.database import Database
from repro.db.sql.ast import (
    CheckpointView,
    Explain,
    RestoreView,
    Select,
    ServeView,
    StopServing,
)
from repro.db.sql.parser import parse
from repro.exceptions import ConfigurationError, SQLExecutionError, ViewDefinitionError
from repro.workloads.synth_text import SparseCorpusGenerator

VIEW_DDL = (
    "CREATE CLASSIFICATION VIEW labeled_papers KEY id "
    "ENTITIES FROM papers KEY id "
    "LABELS FROM paper_area LABEL label "
    "EXAMPLES FROM example_papers KEY id LABEL label "
    "FEATURE FUNCTION tf_bag_of_words USING SVM"
)


def build_portal(count: int = 80, seed: int = 11):
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    documents = SparseCorpusGenerator(
        vocabulary_size=300, nonzeros_per_document=10, positive_fraction=0.4, seed=seed
    ).generate_list(count)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in documents],
    )
    engine = HazyEngine(db)
    db.execute(VIEW_DDL)
    for doc in documents[:30]:
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )
    return db, engine, documents


class TestParsing:
    def test_serve_view_defaults(self):
        statement = parse("SERVE VIEW labeled_papers")
        assert isinstance(statement, ServeView)
        assert statement.view == "labeled_papers"
        assert statement.options == {}

    def test_serve_view_with_options(self):
        statement = parse(
            "SERVE VIEW v WITH (shards = 8, max_wait_s = 0.002, adaptive_batching = true)"
        )
        assert statement.options == {
            "shards": 8,
            "max_wait_s": 0.002,
            "adaptive_batching": True,
        }

    def test_stop_serving(self):
        statement = parse("STOP SERVING v;")
        assert isinstance(statement, StopServing)
        assert statement.view == "v"

    def test_checkpoint_view(self):
        statement = parse("CHECKPOINT VIEW v TO '/tmp/ck'")
        assert isinstance(statement, CheckpointView)
        assert (statement.view, statement.path) == ("v", "/tmp/ck")

    def test_restore_view_with_options(self):
        statement = parse("RESTORE VIEW v FROM '/tmp/ck' WITH (max_read_batch = 32)")
        assert isinstance(statement, RestoreView)
        assert statement.path == "/tmp/ck"
        assert statement.options == {"max_read_batch": 32}

    def test_explain_wraps_any_statement(self):
        statement = parse("EXPLAIN SELECT * FROM t WHERE id = 3")
        assert isinstance(statement, Explain)
        assert isinstance(statement.statement, Select)


class TestExecutionWithoutEngine:
    def test_serving_statements_require_engine(self):
        db = Database()
        for sql in (
            "SERVE VIEW v",
            "STOP SERVING v",
            "CHECKPOINT VIEW v TO '/tmp/x'",
            "RESTORE VIEW v FROM '/tmp/x'",
        ):
            with pytest.raises(SQLExecutionError, match="requires a Hazy engine"):
                db.execute(sql)


class TestServingLifecycle:
    def test_serve_select_stop_roundtrip(self):
        db, engine, documents = build_portal()
        row = db.execute("SERVE VIEW labeled_papers WITH (shards = 2)").rows[0]
        assert row["status"] == "serving"
        assert row["shards"] == 2
        view = engine.view("labeled_papers")
        assert view.server is not None

        # Point lookup routes through the batcher; answer matches the server.
        doc = documents[0]
        sql_class = db.execute(
            "SELECT class FROM labeled_papers WHERE id = ?", (doc.entity_id,)
        ).scalar()
        assert sql_class == view.from_binary_label(view.server.label_of(doc.entity_id))

        # All Members scatter/gathers; count matches the server's view.
        count = db.execute(
            "SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'"
        ).scalar()
        assert count == len(view.server.all_members(1))

        # Top-k via the margin virtual column.
        ranked = db.execute(
            "SELECT id, margin FROM labeled_papers ORDER BY margin DESC LIMIT 3"
        ).rows
        assert [r["id"] for r in ranked] == [eid for eid, _ in view.server.top_k(3, 1)]

        # Ascending margin order is NOT a top-k read (top_k answers highest
        # margins only); it must not silently return the same rows reversed.
        with pytest.raises(SQLExecutionError, match="ORDER BY"):
            db.execute("SELECT id FROM labeled_papers ORDER BY margin ASC LIMIT 3")

        stopped = db.execute("STOP SERVING labeled_papers").rows[0]
        assert stopped["status"] == "stopped"
        assert view.server is None
        # Reads still work through the direct maintainer afterwards.
        assert db.execute("SELECT COUNT(*) FROM labeled_papers").scalar() == len(documents)

    def test_serve_unknown_option_rejected(self):
        db, engine, _ = build_portal(count=20)
        with pytest.raises(ConfigurationError, match="unknown serving option"):
            db.execute("SERVE VIEW labeled_papers WITH (bogus = 1)")
        assert engine.view("labeled_papers").server is None

    def test_adaptive_batching_conflicts_with_fixed_window(self):
        db, engine, _ = build_portal(count=20)
        # Rejected in either option order — never silently resolved.
        for options in (
            "adaptive_batching = true, max_wait_s = 0.001",
            "max_wait_s = 0.001, adaptive_batching = true",
        ):
            with pytest.raises(ConfigurationError, match="adaptive_batching"):
                db.execute(f"SERVE VIEW labeled_papers WITH ({options})")
        assert engine.view("labeled_papers").server is None
        # adaptive_batching = false is just "use the default window".
        db.execute("SERVE VIEW labeled_papers WITH (adaptive_batching = false)")
        assert engine.view("labeled_papers").server.batcher.window is None
        db.execute("STOP SERVING labeled_papers")

    def test_stop_serving_unserved_view_fails(self):
        db, _, _ = build_portal(count=20)
        with pytest.raises(ViewDefinitionError, match="not being served"):
            db.execute("STOP SERVING labeled_papers")

    def test_checkpoint_requires_serving(self, tmp_path):
        db, _, _ = build_portal(count=20)
        with pytest.raises(ViewDefinitionError, match="not being served"):
            db.execute(f"CHECKPOINT VIEW labeled_papers TO '{tmp_path / 'ck'}'")

    def test_checkpoint_and_restore_via_sql(self, tmp_path):
        db, engine, documents = build_portal()
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        directory = tmp_path / "ck"
        info = db.execute(f"CHECKPOINT VIEW labeled_papers TO '{directory}'").rows[0]
        assert info["entities"] == len(documents)
        before = db.execute("SELECT id, class FROM labeled_papers ORDER BY id").rows
        db.execute("STOP SERVING labeled_papers")

        # A fresh process: same base tables, new engine, RESTORE instead of CREATE.
        db2 = Database()
        db2.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
        db2.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
        db2.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
        db2.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
        db2.executemany(
            "INSERT INTO papers (id, title) VALUES (?, ?)",
            [(doc.entity_id, doc.text) for doc in documents],
        )
        db2.executemany(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            [
                (doc.entity_id, "database" if doc.label == 1 else "other")
                for doc in documents[:30]
            ],
        )
        engine2 = HazyEngine(db2)
        restored = db2.execute(f"RESTORE VIEW labeled_papers FROM '{directory}'").rows[0]
        assert restored["status"] == "serving"
        after = db2.execute("SELECT id, class FROM labeled_papers ORDER BY id").rows
        assert after == before
        assert engine2.view("labeled_papers").server is not None
        db2.execute("STOP SERVING labeled_papers")


def plan_nodes(db, sql: str) -> list[str]:
    """The EXPLAIN node labels, indentation stripped."""
    return [row["node"].strip() for row in db.execute(sql).rows]


class TestExplain:
    def test_explain_table_point_and_scan(self):
        db, _, documents = build_portal(count=20)
        point = db.execute("EXPLAIN SELECT * FROM papers WHERE id = 1").rows
        assert [row["node"].strip() for row in point] == [
            "Filter(id = 1)",
            "IndexRange(papers.id = 1)",
        ]
        assert point[1]["estimated_seconds"] > 0
        scan = db.execute("EXPLAIN SELECT * FROM papers").rows
        assert [row["node"].strip() for row in scan] == ["SeqScan(papers)"]
        # The estimates are the cost model's, not guesses: a scan prices the
        # table's actual pages and tuples, a point read one random page.
        table = db.table("papers")
        expected = db.cost_model.statement_overhead + db.cost_model.scan_cost(
            table.page_count(), table.row_count()
        )
        assert scan[0]["estimated_seconds"] == pytest.approx(expected)

    def test_explain_view_unserved_vs_served(self):
        db, _, _ = build_portal(count=20)
        unserved = plan_nodes(db, "EXPLAIN SELECT class FROM labeled_papers WHERE id = 1")
        assert unserved == [
            "Project(class)",
            "Filter(id = 1)",
            "ViewPointRead(labeled_papers.id = 1)",
        ]

        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        served = plan_nodes(db, "EXPLAIN SELECT class FROM labeled_papers WHERE id = 1")
        assert served[-1] == "ServedPointRead(labeled_papers.id = 1)"
        members = plan_nodes(
            db, "EXPLAIN SELECT COUNT(*) FROM labeled_papers WHERE class = 'database'"
        )
        assert members == [
            "Aggregate(count)",
            "Filter(class = 'database')",
            "ServedScatterGather(labeled_papers, class = 'database')",
        ]
        topk = plan_nodes(
            db, "EXPLAIN SELECT id FROM labeled_papers ORDER BY margin DESC LIMIT 5"
        )
        assert topk == ["Project(id)", "TopK(k=5, by=margin desc)"]
        db.execute("STOP SERVING labeled_papers")

    def test_explain_is_deterministic_and_side_effect_free(self):
        db, _, _ = build_portal(count=20)
        first = db.execute("EXPLAIN SELECT class FROM labeled_papers WHERE id = 1").rows
        second = db.execute("EXPLAIN SELECT class FROM labeled_papers WHERE id = 1").rows
        assert first == second

    def test_explain_dml(self):
        db, _, _ = build_portal(count=20)
        row = db.execute("EXPLAIN INSERT INTO papers (id, title) VALUES (999, 'x')").rows[0]
        assert row["node"] == "INSERT(papers)"
        # Nothing was inserted.
        assert db.execute("SELECT COUNT(*) FROM papers WHERE id = 999").scalar() == 0


class TestServedSessionSemantics:
    def test_sql_read_your_writes_through_context(self):
        db, engine, documents = build_portal()
        db.execute("SERVE VIEW labeled_papers WITH (shards = 2)")
        from repro.serve.sync import SessionRegistry

        context = SessionRegistry()
        doc = documents[40]
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
            context=context,
        )
        server = engine.view("labeled_papers").server
        ticket = server.take_session_ticket()
        assert ticket is not None  # the diverted trigger parked the write's ticket
        context.note_write("labeled_papers", server, ticket)
        db.execute(
            "SELECT class FROM labeled_papers WHERE id = ?",
            (doc.entity_id,),
            context=context,
        )
        session = context.session_for("labeled_papers", server)
        assert session.last_epoch >= 1  # the read waited for the write's epoch
        db.execute("STOP SERVING labeled_papers")
