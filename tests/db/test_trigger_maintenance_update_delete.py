"""Trigger-driven maintenance on SQL ``UPDATE`` / ``DELETE``.

The seed engine only maintained views on ``INSERT`` (plus example deletion);
these tests pin down the full CRUD story: ordinary SQL ``UPDATE`` and
``DELETE`` statements against *both* the entity table and the example table
must leave the classification view consistent with the declarative oracle
(:func:`repro.core.view.view_contents`) over the current entities and model.
"""

from __future__ import annotations

import pytest

from repro import Database, HazyEngine
from repro.core.view import view_contents
from repro.workloads.synth_text import SparseCorpusGenerator


@pytest.fixture
def maintained_view():
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    corpus = SparseCorpusGenerator(
        vocabulary_size=200, nonzeros_per_document=10, positive_fraction=0.4, seed=33
    ).generate_list(80)
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(
        """
        CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
        ENTITIES FROM Papers KEY id
        LABELS FROM Paper_Area LABEL label
        EXAMPLES FROM Example_Papers KEY id LABEL label
        FEATURE FUNCTION tf_bag_of_words
        USING SVM
        """
    )
    view = engine.view("Labeled_Papers")
    for doc in corpus[:20]:
        db.execute(
            "INSERT INTO example_papers (id, label) VALUES (?, ?)",
            (doc.entity_id, "database" if doc.label == 1 else "other"),
        )
    return db, view, corpus


def assert_consistent(view):
    """The maintained view equals the oracle over its current entities/model."""
    oracle = view_contents(view.entity_snapshot(), view.trainer.model.copy())
    assert view.maintainer.contents() == oracle


def test_entity_update_refeaturizes_the_row(maintained_view):
    db, view, corpus = maintained_view
    target = corpus[0].entity_id
    before = view.maintainer.store.get(target).features
    db.execute(
        "UPDATE papers SET title = ? WHERE id = ?",
        ("database systems query optimization storage indexing", target),
    )
    after = view.maintainer.store.get(target).features
    assert after != before  # the stored feature vector tracked the new text
    assert view.maintainer.store.count() == len(corpus)
    assert_consistent(view)


def test_entity_delete_removes_it_from_the_view(maintained_view):
    db, view, corpus = maintained_view
    target = corpus[5].entity_id
    rowcount = db.execute("DELETE FROM papers WHERE id = ?", (target,)).rowcount
    assert rowcount == 1
    assert view.maintainer.store.count() == len(corpus) - 1
    assert target not in view.maintainer.contents()
    assert target not in view.members(1) and target not in view.members(-1)
    # SQL over the view agrees.
    total = db.execute("SELECT COUNT(*) FROM Labeled_Papers").scalar()
    assert total == len(corpus) - 1
    assert_consistent(view)


def test_entity_delete_with_predicate_removes_many(maintained_view):
    db, view, corpus = maintained_view
    victims = [doc.entity_id for doc in corpus if doc.entity_id < 10]
    rowcount = db.execute("DELETE FROM papers WHERE id < 10").rowcount
    assert rowcount == len(victims)
    contents = view.maintainer.contents()
    assert all(victim not in contents for victim in victims)
    assert_consistent(view)


def test_example_update_flips_the_training_signal(maintained_view):
    db, view, corpus = maintained_view
    target = corpus[0].entity_id
    examples_before = len(view._examples)
    db.execute("UPDATE example_papers SET label = 'other' WHERE id = ?", (target,))
    assert len(view._examples) == examples_before  # replaced, not duplicated
    flipped = [ex for ex in view._examples if ex.entity_id == target]
    assert flipped and flipped[0].label == -1
    assert_consistent(view)


def test_example_delete_retrains(maintained_view):
    db, view, corpus = maintained_view
    target = corpus[1].entity_id
    examples_before = len(view._examples)
    db.execute("DELETE FROM example_papers WHERE id = ?", (target,))
    assert len(view._examples) == examples_before - 1
    assert all(ex.entity_id != target for ex in view._examples)
    assert_consistent(view)


def test_mixed_crud_sequence_stays_consistent(maintained_view):
    db, view, corpus = maintained_view
    db.execute("UPDATE papers SET title = 'storage engines' WHERE id = ?", (corpus[2].entity_id,))
    db.execute("DELETE FROM papers WHERE id = ?", (corpus[3].entity_id,))
    db.execute(
        "INSERT INTO papers (id, title) VALUES (?, ?)", (5001, "learned index structures")
    )
    db.execute("UPDATE example_papers SET label = 'other' WHERE id = ?", (corpus[4].entity_id,))
    db.execute("DELETE FROM example_papers WHERE id = ?", (corpus[6].entity_id,))
    db.execute("INSERT INTO example_papers (id, label) VALUES (?, ?)", (5001, "database"))
    assert view.maintainer.store.count() == len(corpus)  # -1 deleted, +1 inserted
    assert_consistent(view)
