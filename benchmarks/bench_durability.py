"""Crash-lossless durability: incremental checkpoints + WAL recovery gate.

Two properties the durability subsystem (``src/repro/persist``) must hold,
measured end-to-end through the SQL surface:

* an **incremental checkpoint of an idle served view costs ~0**: nothing
  moved since the parent, so zero shards are rewritten and zero shard
  payload bytes hit disk — the checkpoint is a manifest that references the
  parent's payload files by content digest;
* **recovery replays to the exact pre-crash answer set**: post-checkpoint
  churn lives in the diverted-op write-ahead log, so a restart that restores
  the snapshot and replays the WAL lands bit-identical to the server that
  never crashed — same ``contents()`` map, same ``top_k`` margins to the
  last bit, with every post-checkpoint op accounted for.

The crash is simulated the way the crash-injection suite does: the on-disk
state (checkpoint directory + WAL directory) at the kill point is the whole
truth; the in-memory pipeline is thrown away.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Database, HazyEngine
from repro.bench.reporting import format_table
from repro.persist import load_checkpoint
from repro.persist.wal import SEGMENT_SUFFIX, WriteAheadLog
from repro.workloads import SparseCorpusGenerator

ENTITIES = 600
EXAMPLES = 50
#: Post-checkpoint training-example inserts that only the WAL preserves.
POST_CHURN = 25

DDL = """
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
ENTITIES FROM Papers KEY id
LABELS FROM Paper_Area LABEL label
EXAMPLES FROM Example_Papers KEY id LABEL label
FEATURE FUNCTION tf_bag_of_words
USING SVM
"""


def _corpus():
    generator = SparseCorpusGenerator(
        vocabulary_size=500, nonzeros_per_document=12, positive_fraction=0.35, seed=29
    )
    return generator.generate_list(ENTITIES)


def _build_database(corpus) -> Database:
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    db.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:EXAMPLES]
        ],
    )
    return db


def _answers(server):
    return server.contents(), server.top_k(25), server.top_k(25, label=-1)


def _wal_kib(wal_dir: Path) -> float:
    return sum(path.stat().st_size for path in wal_dir.glob(f"wal-*{SEGMENT_SUFFIX}")) / 1024.0


def run_durability_experiment(workdir: str | Path, corpus=None) -> dict:
    """Serve with a WAL, checkpoint, churn, crash, recover; returns the row."""
    corpus = corpus if corpus is not None else _corpus()
    workdir = Path(workdir)
    wal_dir = workdir / "wal"
    full_dir = workdir / "full"
    inc_dir = workdir / "inc"

    db = _build_database(corpus)
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(DDL)
    db.execute(f"SERVE VIEW Labeled_Papers WITH (wal = '{wal_dir}')")
    server = engine.view("Labeled_Papers").server
    server.flush()

    full = db.execute(f"CHECKPOINT VIEW Labeled_Papers TO '{full_dir}'").rows[0]
    # Nothing moved since the full checkpoint: the incremental one must
    # rewrite no shard payloads at all.
    idle = db.execute(
        f"CHECKPOINT VIEW Labeled_Papers TO '{inc_dir}' WITH (incremental = true)"
    ).rows[0]

    # Post-checkpoint churn: example inserts the WAL alone preserves the
    # arrival order of.  Deliberately NOT followed by another checkpoint —
    # the crash happens first, so recovery must get these from the log.
    churn = [
        ("INSERT INTO example_papers (id, label) VALUES (?, ?)",
         (doc.entity_id, "database" if doc.label == 1 else "other"))
        for doc in corpus[EXAMPLES : EXAMPLES + POST_CHURN]
    ]
    for sql, params in churn:
        db.execute(sql, params)
    server.flush()
    reference = _answers(server)
    server.close()  # cleanup only; the disk state above is the crash state

    # How much log recovery will have to replay.
    applied_seq = load_checkpoint(inc_dir).manifest.wal_applied_seq
    survivor = WriteAheadLog(wal_dir, fresh=False)
    wal_records = len(survivor.records_after(applied_seq))
    wal_kib = _wal_kib(wal_dir)
    survivor.close()

    # ---- recovery: fresh "process", durable base tables, snapshot + WAL
    restart_db = _build_database(corpus)
    for sql, params in churn:
        restart_db.execute(sql, params)
    restart = HazyEngine(
        restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
    )
    restart_db.execute(
        f"RESTORE VIEW Labeled_Papers FROM '{inc_dir}' WITH (wal = '{wal_dir}')"
    )
    restored = restart.view("Labeled_Papers").server
    identical = _answers(restored) == reference
    restored.close()

    return {
        "entities": ENTITIES,
        "post_churn_ops": POST_CHURN,
        "full_kib": round(full["bytes"] / 1024.0, 1),
        "idle_inc_shards_written": idle["shards_written"],
        "idle_inc_shard_kib": round(idle["shard_bytes"] / 1024.0, 1),
        "idle_inc_kib": round(idle["bytes"] / 1024.0, 1),
        "wal_records_replayed": wal_records,
        "wal_kib": round(wal_kib, 1),
        "identical": int(identical),
    }


def build_table(corpus=None) -> list[dict]:
    corpus = corpus if corpus is not None else _corpus()
    with tempfile.TemporaryDirectory() as tmp:
        return [run_durability_experiment(tmp, corpus=corpus)]


def test_durability_gate(benchmark):
    """The PR gate: idle incremental writes no shard payloads; recovery
    replays every post-checkpoint op and lands bit-identical."""
    corpus = _corpus()
    rows = benchmark.pedantic(lambda: build_table(corpus), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Durability: incremental checkpoints + WAL recovery"))
    row = rows[0]
    assert row["idle_inc_shards_written"] == 0, "idle incremental rewrote shard payloads"
    assert row["idle_inc_shard_kib"] == 0, "idle incremental shard bytes must be zero"
    assert row["idle_inc_kib"] < row["full_kib"], (
        "an idle incremental checkpoint should cost a manifest, not a snapshot"
    )
    assert row["wal_records_replayed"] == POST_CHURN, (
        f"recovery replayed {row['wal_records_replayed']} of {POST_CHURN} logged ops"
    )
    assert row["identical"] == 1, "post-recovery answers differ from the pre-crash server"
