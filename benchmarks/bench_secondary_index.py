"""Secondary B+-tree indexes vs sequential scans: the CREATE INDEX gate.

``CREATE INDEX idx ON t (col)`` opens two new access paths the planner costs
against the ``SeqScan``: a :class:`~repro.db.sql.plan.SecondaryIndexRange`
probe (B+-tree descent + one heap fetch per match) for selective equality and
range predicates, and the *index-ordered* form that answers
``ORDER BY col LIMIT k`` by walking the leaf chain and heap-fetching at most
k rows, with no ``Sort``/``TopK`` in the plan at all.

The gate enforced here: on a main-memory cost model, the selective range read
and the index-ordered ascending top-k are both **>= 2x cheaper** in simulated
seconds than the same SQL answered by a sequential scan (measured by dropping
the index and re-running the identical statement), with identical rows.  Both
paths run through plain SQL, so the comparison is end-to-end — parser,
planner (which must actually *choose* the index, asserted via EXPLAIN),
plan walk, heap.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.reporting import format_table  # noqa: E402
from repro.db.costmodel import CostModel  # noqa: E402
from repro.db.database import Database  # noqa: E402

ROWS = 4000
STATIONS = 50
TOP_K = 10
MIN_SPEEDUP = 2.0
SEED = 13


def _build_database() -> Database:
    db = Database(cost_model=CostModel.main_memory())
    db.execute(
        "CREATE TABLE readings (id integer PRIMARY KEY, margin float, station integer)"
    )
    rng = random.Random(SEED)
    db.executemany(
        "INSERT INTO readings (id, margin, station) VALUES (?, ?, ?)",
        [
            (i, round(rng.uniform(0.0, 1.0), 6), rng.randrange(STATIONS))
            for i in range(ROWS)
        ],
    )
    return db


def _access_leaf(db: Database, sql: str) -> str:
    return db.execute(f"EXPLAIN {sql}").rows[-1]["node"].strip()


def _measure(db: Database, sql: str) -> tuple[list, float]:
    start = db.stats.simulated_seconds
    rows = db.execute(sql).rows
    return rows, db.stats.simulated_seconds - start


def _canonical(rows: list) -> list:
    return sorted(tuple(sorted(row.items())) for row in rows)


def run_cell(name: str, sql: str, db: Database) -> dict:
    """Measure ``sql`` with the index in place, then without it."""
    db.execute("CREATE INDEX idx_margin ON readings (margin)")
    indexed_leaf = _access_leaf(db, sql)
    assert indexed_leaf.startswith("SecondaryIndexRange"), (
        f"{name}: planner did not choose the index: {indexed_leaf}"
    )
    indexed_rows, indexed_cost = _measure(db, sql)

    db.execute("DROP INDEX idx_margin")
    scan_leaf = _access_leaf(db, sql)
    assert scan_leaf.startswith("SeqScan"), f"{name}: expected SeqScan: {scan_leaf}"
    scan_rows, scan_cost = _measure(db, sql)

    identical = _canonical(indexed_rows) == _canonical(scan_rows)
    speedup = scan_cost / indexed_cost if indexed_cost > 0 else float("inf")
    return {
        "cell": name,
        "rows": ROWS,
        "returned": len(indexed_rows),
        "indexed_simulated_s": round(indexed_cost, 9),
        "seqscan_simulated_s": round(scan_cost, 9),
        "speedup": round(speedup, 2),
        "identical": int(identical),
        "min_speedup": MIN_SPEEDUP,
    }


def build_table() -> list[dict]:
    db = _build_database()
    # The 98th-percentile threshold leaves a selective ~2% slice in range.
    margins = sorted(row["margin"] for row in db.execute("SELECT * FROM readings").rows)
    threshold = margins[int(ROWS * 0.98)]
    cells = [
        (
            "selective_range",
            f"SELECT id FROM readings WHERE margin >= {threshold} ORDER BY id",
        ),
        (
            "index_ordered_topk",
            f"SELECT id, margin FROM readings ORDER BY margin ASC LIMIT {TOP_K}",
        ),
    ]
    return [run_cell(name, sql, db) for name, sql in cells]


def test_secondary_index_gate(benchmark):
    """The PR gate: >= 2x cheaper than the seq-scan answer, identical rows."""
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Secondary index vs sequential scan"))
    for row in rows:
        assert row["identical"] == 1, f"{row['cell']}: rows differ"
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['cell']}: secondary-index speedup {row['speedup']}x is below "
            f"the {MIN_SPEEDUP}x gate"
        )
