"""Figure 11(A): eager-update scalability with data set size.

The paper scales a synthetic data set to 1, 2 and 4 GB and shows that
Hazy-MM is fastest until it exhausts RAM (at 4 GB), Hazy-OD scales smoothly
and stays close to naive-MM, and naive-OD is slowest throughout.  Here the
data set is scaled 1x / 2x / 4x (laptop-sized) and the main-memory
architecture is declared "out of RAM" when its footprint exceeds a fixed
memory budget, mirroring the paper's 4 GB machine.
"""

from __future__ import annotations

from repro.bench.harness import run_eager_update_experiment
from repro.bench.reporting import format_bytes, format_table
from repro.workloads import citeseer_like

SCALES = (0.25, 0.5, 1.0)
#: The "RAM" of the simulated machine: the MM architecture is unusable beyond this.
MEMORY_BUDGET_BYTES = 4_000_000

GRID = [
    ("ondisk", "naive"),
    ("ondisk", "hazy"),
    ("hybrid", "hazy"),
    ("mainmemory", "naive"),
    ("mainmemory", "hazy"),
]


def build_table(warmup: int = 400, timed: int = 100):
    rows = []
    for scale in SCALES:
        dataset = citeseer_like(scale=scale, seed=3)
        data_bytes = dataset.approximate_size_bytes()
        row: dict[str, object] = {
            "scale": f"{scale}x",
            "entities": dataset.entity_count(),
            "data_size": format_bytes(data_bytes),
        }
        for architecture, strategy in GRID:
            label = f"{architecture}/{strategy}"
            if architecture == "mainmemory" and data_bytes > MEMORY_BUDGET_BYTES:
                row[label] = "exhausted RAM"
                continue
            result = run_eager_update_experiment(
                dataset, architecture, strategy, warmup=warmup, timed=timed
            )
            row[label] = round(result.simulated_ops_per_second, 1)
        rows.append(row)
    return rows


def test_fig11a_scalability(benchmark):
    rows = benchmark.pedantic(lambda: build_table(), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 11(A): eager update throughput vs data size (simulated updates/s)"))
    # Naive on-disk throughput degrades as the data grows.
    naive_od = [row["ondisk/naive"] for row in rows]
    assert naive_od[0] > naive_od[-1]
    # The architecture gap the figure is about: main-memory (while it fits) is
    # orders of magnitude faster than on-disk for the same strategy.
    assert rows[0]["mainmemory/naive"] > 10 * rows[0]["ondisk/naive"]
    # Hazy on-disk tracks naive on-disk in the scaled reproduction (the less
    # converged model keeps the band wide — see EXPERIMENTS.md); it must never
    # fall far behind it.
    for row in rows:
        assert row["ondisk/hazy"] > 0.5 * row["ondisk/naive"]
    # The largest configuration exhausts the main-memory budget, as in the paper.
    assert rows[-1]["mainmemory/hazy"] == "exhausted RAM"
    # The hybrid keeps running at every size.
    assert all(isinstance(row["hybrid/hazy"], float) for row in rows)
