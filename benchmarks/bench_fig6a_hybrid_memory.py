"""Figure 6(A): memory usage of the hybrid architecture (ε-map vs total data).

Paper's reported numbers:

    Data   Total (hybrid RAM)   eps-Map
    FC     10.4 MB              6.7 MB
    DB      1.6 MB              1.4 MB
    CS     13.7 MB              5.4 MB

and the observation that the Citeseer ε-map (5.4 MB) is over 245x smaller than
the 1.3 GB data set.  The reproduced claims: the hybrid's RAM footprint is a
small fraction of the data set size, and the ε-map in particular scales with
the entity *count*, not the feature width.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_bytes, format_table
from repro.workloads import update_trace

PAPER_MEMORY = {
    "FC": {"total": "10.4MB", "eps_map": "6.7MB"},
    "DB": {"total": "1.6MB", "eps_map": "1.4MB"},
    "CS": {"total": "13.7MB", "eps_map": "5.4MB"},
}


def build_table(datasets, buffer_fraction: float = 0.01):
    rows = []
    for abbrev, dataset in datasets.items():
        trace = update_trace(dataset, warmup=200, timed=0, seed=2)
        view = build_maintained_view(
            dataset,
            "hybrid",
            "hazy",
            "eager",
            buffer_fraction=buffer_fraction,
            warm_examples=trace.warm_examples(),
        )
        usage = view.store.memory_usage()
        data_bytes = dataset.approximate_size_bytes()
        rows.append(
            {
                "dataset": abbrev,
                "data_size": format_bytes(data_bytes),
                "hybrid_ram": format_bytes(usage["total"]),
                "eps_map": format_bytes(usage["eps_map"]),
                "buffer": format_bytes(usage["buffer"]),
                "ram_fraction_of_data": round(usage["total"] / data_bytes, 3),
                "epsmap_to_data_ratio": round(data_bytes / max(usage["eps_map"], 1), 1),
                "paper_total": PAPER_MEMORY[abbrev]["total"],
                "paper_eps_map": PAPER_MEMORY[abbrev]["eps_map"],
            }
        )
    return rows


def test_fig6a_memory_usage(all_datasets, benchmark):
    rows = benchmark.pedantic(lambda: build_table(all_datasets), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 6(A): hybrid memory usage (generated vs paper)"))
    by_dataset = {row["dataset"]: row for row in rows}
    # The hybrid's RAM footprint is a small fraction of the data set for the
    # text workloads (the paper's CS ratio is 245x for the eps-map alone).
    assert by_dataset["CS"]["ram_fraction_of_data"] < 0.5
    assert by_dataset["CS"]["epsmap_to_data_ratio"] > 10
    assert by_dataset["DB"]["ram_fraction_of_data"] < 0.6
    # The dense FC vectors are small, so the ratio is less extreme — same as the paper.
    assert by_dataset["FC"]["epsmap_to_data_ratio"] > 1
