"""Ablations on the Skiing strategy (paper §C.2 and Theorem 3.3).

Two studies that the paper describes in prose:

* **alpha sensitivity** — the paper runs all experiments with alpha = 1 and
  notes that tuning alpha buys only ~10%.  The ablation sweeps alpha over the
  eager-update experiment.
* **competitive ratio** — Theorem 3.3 says the Skiing schedule's cost is
  within a factor ~2 of the offline optimum as data grows.  The ablation
  measures the empirical ratio of Skiing vs the offline optimal schedule (and
  vs "never reorganize" / "always reorganize") on the cost traces produced by
  the actual maintenance workload.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view, run_eager_update_experiment
from repro.bench.reporting import format_table
from repro.core.skiing import OfflineOptimalScheduler
from repro.workloads import update_trace

ALPHAS = (0.25, 0.5, 1.0, 2.0, 4.0)


def build_alpha_table(dataset, warmup: int = 500, timed: int = 150):
    rows = []
    for alpha in ALPHAS:
        result = run_eager_update_experiment(
            dataset, "mainmemory", "hazy", warmup=warmup, timed=timed, alpha=alpha
        )
        rows.append(
            {
                "alpha": alpha,
                "updates_per_s": round(result.simulated_ops_per_second, 1),
                "reorganizations": int(result.detail["reorganizations"]),
                "avg_band_size": round(result.detail["avg_band_size"], 1),
            }
        )
    return rows


def build_ratio_table(dataset, warmup: int = 500, timed: int = 120):
    """Replay the workload's incremental-cost trace against alternative schedules."""
    trace = update_trace(dataset, warmup=warmup, timed=timed, seed=21)
    view = build_maintained_view(
        dataset, "mainmemory", "hazy", "eager", warm_examples=trace.warm_examples()
    )
    view.absorb_many(trace.timed_examples())
    skiing = view.maintainer.skiing
    history = skiing.history
    reorg_cost = skiing.reorganization_cost or view.maintainer.stats.simulated_reorganization_seconds
    if reorg_cost <= 0:
        reorg_cost = 1e-3
    # Reconstruct per-round incremental costs from the accumulated values
    # (the accumulator resets to zero at every reorganization).
    per_round: list[float] = []
    previous = 0.0
    for decision in history:
        if decision.reorganize:
            previous = 0.0
            continue
        per_round.append(max(0.0, decision.accumulated_cost - previous))
        previous = decision.accumulated_cost

    # A monotone cost surrogate built from the workload's own per-round waste:
    # the cost at round i with last reorganization at s is the waste accumulated
    # since s, capped at the reorganization cost.  Every schedule (Skiing, the
    # offline optimum, never, always) is evaluated against this same surrogate
    # so the ratios are directly comparable.
    prefix = [0.0]
    for cost_value in per_round:
        prefix.append(prefix[-1] + cost_value)
    rounds = len(per_round)

    def cost(s: int, i: int) -> float:
        return min(prefix[i] - prefix[min(s, i)], reorg_cost)

    from repro.core.skiing import simulate_skiing_on_trace

    skiing_total, skiing_schedule = simulate_skiing_on_trace(cost, rounds, reorg_cost, alpha=1.0)
    optimal_total, optimal_schedule = OfflineOptimalScheduler(reorg_cost).solve(cost, rounds)
    never_total = sum(cost(0, i) for i in range(1, rounds + 1))
    always_total = rounds * reorg_cost
    return [
        {
            "schedule": "Skiing (alpha=1)",
            "total_cost": round(skiing_total, 4),
            "reorganizations": len(skiing_schedule),
            "vs_optimal": round(skiing_total / max(optimal_total, 1e-12), 2),
        },
        {
            "schedule": "offline optimal",
            "total_cost": round(optimal_total, 4),
            "reorganizations": len(optimal_schedule),
            "vs_optimal": 1.0,
        },
        {
            "schedule": "never reorganize",
            "total_cost": round(never_total, 4),
            "reorganizations": 0,
            "vs_optimal": round(never_total / max(optimal_total, 1e-12), 2),
        },
        {
            "schedule": "always reorganize",
            "total_cost": round(always_total, 4),
            "reorganizations": rounds,
            "vs_optimal": round(always_total / max(optimal_total, 1e-12), 2),
        },
    ]


def test_ablation_alpha_sensitivity(dblife_dataset, benchmark):
    rows = benchmark.pedantic(lambda: build_alpha_table(dblife_dataset), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: Skiing alpha sensitivity (eager updates, Hazy-MM, DB-like)"))
    rates = [row["updates_per_s"] for row in rows]
    default = dict(zip(ALPHAS, rates))[1.0]
    # alpha = 1 is within 2x of the best setting (the paper reports ~10% headroom).
    assert default >= max(rates) / 2.0
    # Smaller alpha means reorganizing at least as often.
    reorgs = [row["reorganizations"] for row in rows]
    assert reorgs[0] >= reorgs[-1]


def test_ablation_skiing_vs_optimal_schedule(dblife_dataset, benchmark):
    rows = benchmark.pedantic(lambda: build_ratio_table(dblife_dataset), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: Skiing vs offline optimal reorganization schedule"))
    by_name = {row["schedule"]: row for row in rows}
    # Theorem 3.3 (empirically): Skiing is within ~2x of the offline optimum,
    # with some slack for the finite trace boundary.
    assert by_name["Skiing (alpha=1)"]["vs_optimal"] <= 3.0
    # And it beats the trivial "always reorganize" schedule.
    assert (
        by_name["Skiing (alpha=1)"]["total_cost"] <= by_name["always reorganize"]["total_cost"] * 1.05
    )
