"""Observability overhead: the instrumented SQL path vs the disabled baseline.

Runs the same single-connection SQL read workload twice — once with a default
(enabled) :class:`repro.obs.Observability`, once with ``enabled=False`` — and
checks the two invariants the tentpole promises:

* **simulated cost is identical**: tracing observes the cost ledgers, it never
  charges them, so the paper-currency numbers cannot move;
* **wall-clock overhead is bounded**: per-statement span bookkeeping must stay
  within ``MAX_OVERHEAD_RATIO`` of the disabled baseline.  The two sides run
  as *interleaved* pairs after a warmup pass, alternating which side goes
  first within each pair (so frequency boost/throttle position bias cancels),
  and the ratio compares the *medians* of the N runs per side — CPU clocks
  drift both directions on shared runners, which makes the median a stabler
  location estimate than the min, and GC is collected-then-disabled around
  each timed loop so collector pauses don't add variance.

``build_report()`` feeds the ``metrics`` section of ``run_all.py --json``; the
pytest gate at the bottom runs in CI's bench-trajectory job.
"""

from __future__ import annotations

import gc
import statistics
import time

import repro
from repro.obs import Observability

STATEMENTS = 1000
ROWS = 300
RUNS_PER_SIDE = 10
MAX_OVERHEAD_RATIO = 1.10


def _run_workload(enabled: bool) -> dict[str, float]:
    """One full workload pass; returns wall seconds and simulated seconds."""
    conn = repro.connect(observability=Observability(enabled=enabled))
    conn.execute("CREATE TABLE items (id integer PRIMARY KEY, bucket integer, v integer)")
    conn.executemany(
        "INSERT INTO items (id, bucket, v) VALUES (?, ?, ?)",
        [(i, i % 10, i * 3) for i in range(ROWS)],
    )
    point = "SELECT v FROM items WHERE id = ?"
    scan = "SELECT id FROM items WHERE bucket = ?"
    # Collect-then-disable around the timed loop (pyperf-style): the enabled
    # side allocates more (spans, retained traces), and letting collector
    # pauses land inside either timed region just adds variance to a
    # comparison that is about per-statement bookkeeping.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for index in range(STATEMENTS):
            if index % 5 == 0:
                conn.execute(scan, (index % 10,)).fetchall()
            else:
                conn.execute(point, (index % ROWS,)).fetchall()
        wall = time.perf_counter() - started
    finally:
        gc.enable()
    simulated = conn.database.stats.simulated_seconds
    statements_seen = (
        conn.database.obs.registry.value("sql.statements_total") if enabled else 0.0
    )
    conn.close()
    return {
        "wall_seconds": wall,
        "simulated_seconds": simulated,
        "statements_total": statements_seen or 0.0,
    }


def build_report() -> dict[str, object]:
    """Median-of-N comparison of the enabled and disabled observability paths."""
    _run_workload(enabled=True)  # warmup: bytecode caches, allocator, page pool
    enabled_runs: list[dict[str, float]] = []
    disabled_runs: list[dict[str, float]] = []
    for index in range(RUNS_PER_SIDE):
        if index % 2 == 0:
            enabled_runs.append(_run_workload(enabled=True))
            disabled_runs.append(_run_workload(enabled=False))
        else:
            disabled_runs.append(_run_workload(enabled=False))
            enabled_runs.append(_run_workload(enabled=True))
    enabled_wall = statistics.median(run["wall_seconds"] for run in enabled_runs)
    disabled_wall = statistics.median(run["wall_seconds"] for run in disabled_runs)
    simulated = {run["simulated_seconds"] for run in enabled_runs} | {
        run["simulated_seconds"] for run in disabled_runs
    }
    return {
        "statements": STATEMENTS,
        "runs_per_side": RUNS_PER_SIDE,
        "enabled_wall_seconds": round(enabled_wall, 4),
        "disabled_wall_seconds": round(disabled_wall, 4),
        "overhead_ratio": round(enabled_wall / max(1e-12, disabled_wall), 4),
        "simulated_seconds_identical": len(simulated) == 1,
        "traced_statements_total": enabled_runs[0]["statements_total"],
    }


def build_table() -> list[dict[str, object]]:
    report = build_report()
    return [report]


def test_observability_overhead_bounded():
    report = build_report()
    assert report["simulated_seconds_identical"], (
        "tracing must never perturb simulated cost"
    )
    assert report["traced_statements_total"] >= STATEMENTS
    attempts = 0
    while report["overhead_ratio"] > MAX_OVERHEAD_RATIO and attempts < 2:
        # Shared CI runners see multi-second load spikes that can inflate a
        # whole measurement window; re-measuring separates that from a real
        # regression (which fails every attempt).
        report = build_report()
        attempts += 1
    assert report["overhead_ratio"] <= MAX_OVERHEAD_RATIO, (
        f"observability overhead {report['overhead_ratio']:.3f}x exceeds "
        f"{MAX_OVERHEAD_RATIO}x budget"
    )
