"""Figure 13: number of tuples between low and high water as updates arrive.

The paper counts the tuples inside the cumulative water band after a warm
model (12k examples) while 2k further updates stream in, for Forest and
DBLife, and finds that in steady state roughly 1% of the tuples are between
low and high water (with spikes reset by each reorganization).
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.workloads import update_trace

from benchmarks.conftest import BENCH_WARMUP

UPDATES = 300
CHECKPOINTS = (0, 50, 100, 150, 200, 250, 300)


def build_table(datasets):
    rows = []
    for abbrev, dataset in datasets.items():
        trace = update_trace(dataset, warmup=BENCH_WARMUP, timed=UPDATES, seed=13)
        view = build_maintained_view(
            dataset, "mainmemory", "hazy", "eager", warm_examples=trace.warm_examples()
        )
        maintainer = view.maintainer
        total = dataset.entity_count()
        series: dict[int, int] = {0: maintainer.band_tuple_count()}
        for index, example in enumerate(trace.timed_examples(), start=1):
            view.absorb(example)
            if index in CHECKPOINTS:
                series[index] = maintainer.band_tuple_count()
        row: dict[str, object] = {"dataset": abbrev, "entities": total}
        for checkpoint in CHECKPOINTS:
            row[f"band@{checkpoint}"] = series.get(checkpoint, 0)
        row["avg_band_fraction"] = round(maintainer.stats.average_band_size() / total, 4)
        row["reorganizations"] = maintainer.stats.reorganizations
        rows.append(row)
    return rows


def test_fig13_tuples_between_low_and_high_water(all_datasets, benchmark):
    # The paper plots Forest and DBLife; Citeseer is included here for completeness.
    datasets = {key: all_datasets[key] for key in ("FC", "DB", "CS")}
    rows = benchmark.pedantic(lambda: build_table(datasets), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 13: tuples inside [low water, high water] vs #updates"))
    by_dataset = {row["dataset"]: row for row in rows}
    for abbrev in ("FC", "DB"):
        row = by_dataset[abbrev]
        # The steady-state band is a small fraction of the table (the paper
        # reports ~1%; the scaled reproduction stays under ~20%).
        assert row["avg_band_fraction"] < 0.2
        # The band never covers the whole data set at any checkpoint.
        for checkpoint in CHECKPOINTS:
            assert row[f"band@{checkpoint}"] < row["entities"]
