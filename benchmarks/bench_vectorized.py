"""Vectorized batch execution: the three gates of the batched-executor PR.

Three cells, three claims:

``batched_scan_filter_agg``
    The default batched protocol answers a scan + filter + aggregate
    pipeline **>= 2x cheaper** (per-node ``EXPLAIN ANALYZE`` actual
    simulated seconds, summed over the plan) than the explicit
    ``execution_mode="row"`` interpreter running the *same plan* — row mode
    pays ``row_interpret_cpu`` per tuple per operator, the dispatch overhead
    vectorization amortizes away.

``covering_index_only``
    On the on-disk cost model with a small buffer pool, an index-only
    (covering) scan over a composite key answers a covered query **>= 2x
    cheaper** than the same plan forced to heap-fetch each match
    (``Planner(db, use_covering_scans=False)``), with identical rows.

``desc_topk_parity``
    ``ORDER BY margin DESC LIMIT k`` walks the ``prev_leaf`` chain backwards
    and must cost **within 1.5x** of the ascending top-k over the same
    index — descending reads early-exit too, they are not a sort in disguise.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.reporting import format_table  # noqa: E402
from repro.db.costmodel import CostModel  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.db.sql.parser import parse  # noqa: E402
from repro.db.sql.planner import Planner  # noqa: E402

ROWS = 4000
STATIONS = 50
TOP_K = 10
MIN_SPEEDUP = 2.0
MAX_DESC_RATIO = 1.5
SEED = 29


def _populate(db: Database) -> None:
    rng = random.Random(SEED)
    db.execute(
        "CREATE TABLE readings (id integer PRIMARY KEY, margin float, station integer)"
    )
    db.executemany(
        "INSERT INTO readings (id, margin, station) VALUES (?, ?, ?)",
        [
            (i, round(rng.uniform(0.0, 1.0), 2), rng.randrange(STATIONS))
            for i in range(ROWS)
        ],
    )


def _canonical(rows: list) -> list:
    return sorted(tuple(sorted(row.items())) for row in rows)


def _analyze_node_sum(db: Database, sql: str) -> tuple[list[str], float, int]:
    """Plan labels, summed per-node actual seconds, and root row count."""
    rows = db.execute(f"EXPLAIN ANALYZE {sql}").rows
    labels = [row["node"].strip() for row in rows]
    return labels, sum(row["actual_seconds"] for row in rows), rows[0]["rows"]


def _cell(name: str, baseline_s: float, measured_s: float, kind: str,
          gate: float, identical: bool) -> dict:
    ratio = (
        baseline_s / measured_s if kind == "min_speedup" and measured_s > 0
        else measured_s / baseline_s if kind == "max_ratio" and baseline_s > 0
        else float("inf")
    )
    return {
        "cell": name,
        "baseline_s": round(baseline_s, 9),
        "measured_s": round(measured_s, 9),
        "ratio": round(ratio, 2),
        "kind": kind,
        "gate": gate,
        "identical": int(identical),
    }


def batched_vs_row_cell() -> dict:
    """Same plan, two protocols: per-node actuals batched vs row mode."""
    sql = "SELECT COUNT(*) FROM readings WHERE margin >= 0.25"
    batched = Database(cost_model=CostModel.main_memory(), execution_mode="batched")
    row = Database(cost_model=CostModel.main_memory(), execution_mode="row")
    for db in (batched, row):
        _populate(db)
    batched_labels, batched_s, _ = _analyze_node_sum(batched, sql)
    row_labels, row_s, _ = _analyze_node_sum(row, sql)
    assert batched_labels == row_labels, (
        f"plan shapes differ between modes: {batched_labels} vs {row_labels}"
    )
    assert any(label.startswith("Aggregate") for label in batched_labels)
    assert any(label.startswith("SeqScan") for label in batched_labels)
    identical = batched.execute(sql).rows == row.execute(sql).rows
    return _cell(
        "batched_scan_filter_agg", row_s, batched_s, "min_speedup", MIN_SPEEDUP,
        identical,
    )


def covering_cell() -> dict:
    """Index-only scan vs the same probe forced to heap-fetch every match."""
    db = Database(cost_model=CostModel(), buffer_pool_pages=4)
    _populate(db)
    db.execute("CREATE INDEX idx_sm ON readings (station, margin)")
    # A covered full-prefix equality: both selected columns live in the key.
    target = db.execute(
        "SELECT station, margin FROM readings WHERE id = 17"
    ).rows[0]
    sql = (
        "SELECT station, margin FROM readings "
        f"WHERE station = {target['station']} AND margin = {target['margin']}"
    )
    statement = parse(sql)
    # Cycle the 4-page pool so the target's heap page is no longer resident —
    # the heap-fetching baseline must actually pay its random page reads.
    db.execute("SELECT COUNT(*) FROM readings")

    covering_plan = Planner(db).plan_select(statement)
    covering_leaf = covering_plan.explain_rows()[-1]["node"].strip()
    assert "covering" in covering_leaf, (
        f"planner did not choose the index-only scan: {covering_leaf}"
    )
    heap_plan = Planner(db, use_covering_scans=False).plan_select(statement)
    heap_leaf = heap_plan.explain_rows()[-1]["node"].strip()
    assert heap_leaf.startswith("SecondaryIndexRange") and "covering" not in heap_leaf, (
        f"baseline must be the heap-fetching index read: {heap_leaf}"
    )

    start = db.stats.simulated_seconds
    covered_rows, _ = covering_plan.run(db, [], None)
    covering_s = db.stats.simulated_seconds - start
    start = db.stats.simulated_seconds
    heap_rows, _ = heap_plan.run(db, [], None)
    heap_s = db.stats.simulated_seconds - start

    assert covered_rows, "covered query returned no rows; pick a live key"
    identical = _canonical(covered_rows) == _canonical(heap_rows)
    return _cell(
        "covering_index_only", heap_s, covering_s, "min_speedup", MIN_SPEEDUP,
        identical,
    )


def desc_parity_cell() -> dict:
    """Descending fused top-k must track the ascending walk's cost."""
    db = Database(cost_model=CostModel.main_memory())
    _populate(db)
    db.execute("CREATE INDEX idx_margin ON readings (margin)")
    costs = {}
    for direction in ("ASC", "DESC"):
        sql = f"SELECT id, margin FROM readings ORDER BY margin {direction} LIMIT {TOP_K}"
        leaf = db.execute(f"EXPLAIN {sql}").rows[-1]["node"].strip()
        assert f"order=margin {direction.lower()}" in leaf, (
            f"{direction} top-k is not index-ordered: {leaf}"
        )
        start = db.stats.simulated_seconds
        rows = db.execute(sql).rows
        costs[direction] = db.stats.simulated_seconds - start
        # Cross-check the walk against the forced-SeqScan reference answer.
        reference_plan = Planner(db, use_index_paths=False).plan_select(parse(sql))
        reference, _ = reference_plan.run(db, [], None)
        assert [r["margin"] for r in rows] == [r["margin"] for r in reference], (
            f"{direction} fused walk disagrees with the scan reference"
        )
    return _cell(
        "desc_topk_parity", costs["ASC"], costs["DESC"], "max_ratio",
        MAX_DESC_RATIO, True,
    )


def build_table() -> list[dict]:
    return [batched_vs_row_cell(), covering_cell(), desc_parity_cell()]


def test_vectorized_gate(benchmark):
    """The PR gates: batched >= 2x row, covering >= 2x heap-fetching,
    DESC top-k within 1.5x of ASC — identical answers throughout."""
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Vectorized batch execution"))
    for row in rows:
        assert row["identical"] == 1, f"{row['cell']}: answers differ"
        if row["kind"] == "min_speedup":
            assert row["ratio"] >= row["gate"], (
                f"{row['cell']}: speedup {row['ratio']}x is below the "
                f"{row['gate']}x gate"
            )
        else:
            assert row["ratio"] <= row["gate"], (
                f"{row['cell']}: ratio {row['ratio']}x exceeds the "
                f"{row['gate']}x ceiling"
            )
