"""Serving throughput: concurrent SQL reads vs serialized direct-engine calls.

Drives the same mixed read/write workload two ways:

* **direct-serial** — the seed repo's only access path: one thread calling
  ``maintainer.read_single`` / absorbing examples inline, one statement
  dispatch per read;
* **served** — the declarative front door: a view created with ``CREATE
  CLASSIFICATION VIEW``, put behind the server with ``SERVE VIEW``, and
  hammered by ≥4 concurrent :func:`repro.connect` connections issuing plain
  ``SELECT class FROM v WHERE id = ?`` statements (routed through the request
  batcher) while writer connections stream the same training examples as SQL
  ``INSERT``s through the trigger → queue → batched-apply pipeline.

The figure of merit is *simulated* read throughput (reads per simulated
second of storage/CPU work, the same currency as every other figure in
EXPERIMENTS.md); wall-clock throughput is reported alongside.  The batcher
amortizes the per-statement overhead that Figure 5 shows capping read rates,
so the served configuration must clear **2x** the serialized baseline — the
test enforces it *through the SQL read path*, and also re-verifies that every
concurrent SQL read was snapshot-consistent with the model of the epoch its
session observed.
"""

from __future__ import annotations

import json
import threading
import time

import repro
from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.features.base import FeatureFunction
from repro.persist.snapshot import decode_vector, encode_vector
from repro.workloads import read_trace, update_trace

READER_THREADS = 6
WRITER_THREADS = 2
READS = 6000
WRITES = 120
WARMUP = 400
NUM_SHARDS = 4


class PreFeaturizedColumn(FeatureFunction):
    """Decodes a JSON-encoded sparse vector stored in the ``features`` column.

    The benchmark datasets are already featurized; this lets them flow through
    the SQL surface (entity rows in a real table, CREATE CLASSIFICATION VIEW)
    while classifying on exactly the same vectors as the direct baseline.
    """

    name = "prefeaturized"
    norm_q = 1.0

    def compute_feature(self, row):
        return decode_vector(json.loads(row["features"]))


def _workload(dataset, seed=7):
    trace = update_trace(dataset, warmup=WARMUP, timed=WRITES, seed=seed)
    ids = read_trace(dataset, READS, seed=seed + 1)
    return trace, ids


def run_direct_serial(dataset):
    """Baseline: serialized single-statement reads interleaved with updates."""
    trace, ids = _workload(dataset)
    view = build_maintained_view(
        dataset, "mainmemory", "hazy", "eager", warm_examples=trace.warm_examples()
    )
    timed = list(trace.timed_examples())
    reads_per_write = max(1, len(ids) // max(1, len(timed)))
    maintainer = view.maintainer
    read_cost_start = maintainer.stats.simulated_read_seconds
    start_wall = time.perf_counter()
    cursor = 0
    for index, entity_id in enumerate(ids):
        if cursor < len(timed) and index % reads_per_write == 0:
            view.absorb(timed[cursor])
            cursor += 1
        maintainer.read_single(entity_id)
    while cursor < len(timed):
        view.absorb(timed[cursor])
        cursor += 1
    wall = time.perf_counter() - start_wall
    read_seconds = maintainer.stats.simulated_read_seconds - read_cost_start
    return {
        "cell": "direct-serial",
        "reads": len(ids),
        "writes": len(timed),
        "sim_reads_per_s": round(len(ids) / read_seconds, 1),
        "wall_reads_per_s": round(len(ids) / wall, 1),
        "avg_read_batch": 1.0,
        "cache_hits": 0,
    }


def _sql_portal(dataset, warm_examples):
    """Build the SQL-only portal: base tables, view DDL, warm examples."""
    conn = repro.connect(architecture="mainmemory", strategy="hazy", approach="eager")
    conn.engine.registry.register("prefeaturized", PreFeaturizedColumn)
    conn.execute("CREATE TABLE entities (id integer PRIMARY KEY, features text)")
    conn.execute("CREATE TABLE examples (id integer, label integer)")
    conn.executemany(
        "INSERT INTO entities (id, features) VALUES (?, ?)",
        [
            (entity_id, json.dumps(encode_vector(features)))
            for entity_id, features in dataset.entities
        ],
    )
    # Warm examples land before the view DDL, so — exactly as in the direct
    # baseline — the initial clustering reflects the warm model.
    conn.executemany(
        "INSERT INTO examples (id, label) VALUES (?, ?)",
        [(example.entity_id, example.label) for example in warm_examples],
    )
    conn.execute(
        "CREATE CLASSIFICATION VIEW served_entities KEY id "
        "ENTITIES FROM entities KEY id "
        "EXAMPLES FROM examples KEY id LABEL label "
        "FEATURE FUNCTION prefeaturized USING SVM"
    )
    return conn


def run_served(dataset, check_consistency: bool = False):
    """≥4 concurrent SQL readers through the batcher + SQL writers through the pipeline."""
    trace, ids = _workload(dataset)
    conn = _sql_portal(dataset, trace.warm_examples())
    epoch_history = 100_000 if check_consistency else 256
    conn.execute(
        f"SERVE VIEW served_entities WITH (shards = {NUM_SHARDS}, "
        f"max_read_batch = 64, max_wait_s = 0.001, epoch_history = {epoch_history})"
    )
    server = conn.engine.view("served_entities").server
    timed = list(trace.timed_examples())
    chunks = [ids[i::READER_THREADS] for i in range(READER_THREADS)]
    write_chunks = [timed[i::WRITER_THREADS] for i in range(WRITER_THREADS)]
    observations: list[tuple[object, int, int]] = []
    observations_lock = threading.Lock()
    errors: list[BaseException] = []

    def reader(chunk):
        # One connection per client thread: its own monotonic session timeline.
        client = repro.connect(engine=conn.engine)
        try:
            local = []
            session = None
            for entity_id in chunk:
                label = client.execute(
                    "SELECT class FROM served_entities WHERE id = ?", (entity_id,)
                ).scalar()
                if check_consistency:
                    if session is None:
                        session = client.session("served_entities")
                    local.append((entity_id, label, session.last_epoch))
            if check_consistency:
                with observations_lock:
                    observations.extend(local)
        except BaseException as error:  # pragma: no cover
            errors.append(error)
        finally:
            client.close()

    def writer(chunk):
        client = repro.connect(engine=conn.engine)
        try:
            for example in chunk:
                client.execute(
                    "INSERT INTO examples (id, label) VALUES (?, ?)",
                    (example.entity_id, example.label),
                )
        except BaseException as error:  # pragma: no cover
            errors.append(error)
        finally:
            client.close()

    threads = [threading.Thread(target=reader, args=(chunk,)) for chunk in chunks]
    threads += [threading.Thread(target=writer, args=(chunk,)) for chunk in write_chunks]
    start_wall = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.flush(timeout=120)
    wall = time.perf_counter() - start_wall
    assert not errors, errors
    read_seconds = server.simulated_read_seconds()
    row = {
        "cell": f"served-{NUM_SHARDS}shards",
        "reads": len(ids),
        "writes": len(timed),
        "sim_reads_per_s": round(len(ids) / read_seconds, 1),
        "wall_reads_per_s": round(len(ids) / wall, 1),
        "avg_read_batch": round(server.batcher.stats()["avg_batch"], 2),
        "cache_hits": server.shards.cache_stats()["hits_total"],
    }
    consistency = None
    if check_consistency:
        features = {entity_id: f for entity_id, f in dataset.entities}
        consistency = all(
            label == model.predict(features[entity_id])
            for entity_id, label, epoch in observations
            for model in (server.model_for_epoch(epoch),)
            if model is not None
        )
        checked = sum(
            1 for _, _, epoch in observations if server.model_for_epoch(epoch) is not None
        )
        row["snapshot_consistent"] = consistency and checked == len(observations)
    conn.close(timeout=60)
    return row


def build_table(dataset):
    direct = run_direct_serial(dataset)
    served = run_served(dataset)
    speedup = served["sim_reads_per_s"] / max(1e-9, direct["sim_reads_per_s"])
    served["read_speedup_vs_direct"] = round(speedup, 2)
    direct["read_speedup_vs_direct"] = 1.0
    return [direct, served]


def test_serving_throughput(dblife_dataset, benchmark):
    rows = benchmark.pedantic(lambda: build_table(dblife_dataset), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=(
                f"Serving: {READER_THREADS} readers + {WRITER_THREADS} writers vs "
                "serialized direct engine"
            ),
        )
    )
    direct, served = rows
    assert served["read_speedup_vs_direct"] >= 2.0, (
        "batched+cached serving must at least double serialized read throughput"
    )


def test_served_reads_snapshot_consistent_under_maintenance(dblife_dataset):
    row = run_served(dblife_dataset, check_consistency=True)
    assert row["snapshot_consistent"] is True
