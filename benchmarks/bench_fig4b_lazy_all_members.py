"""Figure 4(B): All Members throughput in the lazy approach.

Paper's reported numbers (scans/second):

    Technique            FC     DB     CS
    OD  Naive            1.2   12.2    0.5
    OD  Hazy             3.5   46.9    2.0
    OD  Hybrid           8.0   48.8    2.1
    MM  Naive           10.4   65.7    2.4
    MM  Hazy           410.1  2800     105.7

The reproduced claims: the Hazy strategy scans far fewer tuples than the naive
lazy scan (which must reclassify every entity), so its All Members throughput
is higher on every architecture; Hazy-MM is the fastest cell.  The paper also
reports that lazy *updates* are identical across strategies — checked here too.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view, run_lazy_all_members_experiment
from repro.bench.reporting import format_table
from repro.workloads import update_trace

from benchmarks.conftest import BENCH_WARMUP

GRID = [
    ("ondisk", "naive"),
    ("ondisk", "hazy"),
    ("hybrid", "hazy"),
    ("mainmemory", "naive"),
    ("mainmemory", "hazy"),
]

PAPER_SCANS_PER_SECOND = {
    ("ondisk", "naive"): {"FC": 1.2, "DB": 12.2, "CS": 0.5},
    ("ondisk", "hazy"): {"FC": 3.5, "DB": 46.9, "CS": 2.0},
    ("hybrid", "hazy"): {"FC": 8.0, "DB": 48.8, "CS": 2.1},
    ("mainmemory", "naive"): {"FC": 10.4, "DB": 65.7, "CS": 2.4},
    ("mainmemory", "hazy"): {"FC": 410.1, "DB": 2800.0, "CS": 105.7},
}


def build_table(datasets, warmup: int = BENCH_WARMUP, scans: int = 12):
    rows = []
    for architecture, strategy in GRID:
        row: dict[str, object] = {"architecture": architecture, "strategy": strategy}
        for abbrev, dataset in datasets.items():
            result = run_lazy_all_members_experiment(
                dataset, architecture, strategy, warmup=warmup, scans=scans, updates_between_scans=3
            )
            row[f"{abbrev}_scans_per_s"] = round(result.simulated_ops_per_second, 1)
            row[f"{abbrev}_tuples_scanned"] = int(result.detail["tuples_scanned"])
            row[f"{abbrev}_paper"] = PAPER_SCANS_PER_SECOND[(architecture, strategy)][abbrev]
        rows.append(row)
    return rows


def test_fig4b_table_and_shape(all_datasets, benchmark):
    rows = benchmark.pedantic(lambda: build_table(all_datasets), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 4(B): lazy All Members throughput (simulated scans/s vs paper)"))
    cells = {(row["architecture"], row["strategy"]): row for row in rows}
    for abbrev in ("FC", "DB", "CS"):
        tuples_column = f"{abbrev}_tuples_scanned"
        # Hazy reads fewer tuples than the naive full scan on every architecture.
        assert cells[("mainmemory", "hazy")][tuples_column] < cells[("mainmemory", "naive")][tuples_column]
        assert cells[("ondisk", "hazy")][tuples_column] < cells[("ondisk", "naive")][tuples_column]
    for abbrev in ("FC", "DB"):
        # The fastest cell uses the Hazy strategy (in the paper it is Hazy-MM;
        # in the scaled reproduction Hazy-OD can tie it because the pruned scan
        # fits entirely in the buffer pool).  The Citeseer-like workload is
        # excluded here for the same reason as below: at the scaled-down
        # warm-up its model has not converged, the band covers almost the
        # whole table, and the naive in-memory scan wins on raw tuple
        # throughput because it skips the per-tuple band checks.
        scans_column = f"{abbrev}_scans_per_s"
        fastest = max(cells, key=lambda key: cells[key][scans_column])
        assert fastest[1] == "hazy"
    for abbrev in ("FC", "DB"):
        # On the converged workloads the smaller scans translate directly into
        # higher All Members throughput on disk, where avoided I/O dominates.
        # The Citeseer-like workload is excluded: with the scaled-down warm-up
        # its model has not converged and the band covers most of the table, so
        # Hazy ties the naive scan (the paper makes the same observation for
        # Citeseer's update costs in §4.1.1).
        scans_column = f"{abbrev}_scans_per_s"
        assert cells[("ondisk", "hazy")][scans_column] > cells[("ondisk", "naive")][scans_column]
    # In memory the win requires the band to be small relative to the corpus;
    # at the benchmark scale that holds for the dense Forest-like workload.
    assert cells[("mainmemory", "hazy")]["FC_scans_per_s"] > cells[("mainmemory", "naive")]["FC_scans_per_s"]


def test_fig4b_lazy_updates_identical_across_strategies(dblife_dataset, benchmark):
    """§4.1.2 'Updates': lazy updates run the same code in every configuration."""
    trace = update_trace(dblife_dataset, warmup=50, timed=100, seed=9)

    def measure(strategy: str) -> float:
        view = build_maintained_view(
            dblife_dataset, "mainmemory", strategy, "lazy", warm_examples=trace.warm_examples()
        )
        store = view.store
        start = store.cost_snapshot()
        view.absorb_many(trace.timed_examples())
        return store.cost_snapshot() - start

    naive_cost, hazy_cost = benchmark.pedantic(
        lambda: (measure("naive"), measure("hazy")), rounds=1, iterations=1
    )
    # Both are dominated by the incremental training step; Hazy adds only the
    # constant-time bound update per round.
    assert hazy_cost <= naive_cost * 1.25 + 1e-6


def test_fig4b_benchmark_single_hazy_scan(dblife_dataset, benchmark):
    """pytest-benchmark target: one warm Hazy-MM lazy All Members scan."""
    trace = update_trace(dblife_dataset, warmup=BENCH_WARMUP, timed=20, seed=7)
    view = build_maintained_view(
        dblife_dataset, "mainmemory", "hazy", "lazy", warm_examples=trace.warm_examples()
    )
    view.absorb_many(trace.timed_examples())
    benchmark(lambda: view.maintainer.read_all_members(1))
