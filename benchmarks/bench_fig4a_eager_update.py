"""Figure 4(A): eager Update throughput across architectures and strategies.

Paper's reported numbers (updates/second, warm model):

    Technique            FC     DB     CS
    OD  Naive            0.4    2.1    0.2
    OD  Hazy             2.0    6.8    0.2
    OD  Hybrid           2.0    6.6    0.2
    MM  Naive            5.3   33.1    1.8
    MM  Hazy            49.7  160.5    7.2

The claims this reproduction checks: Hazy beats the naive strategy on the same
architecture (in maintenance work and, at realistic sizes, in throughput), the
main-memory architecture beats on-disk, and the hybrid behaves like Hazy-OD
for updates.  Absolute updates/s differ because the data sets are scaled down
~100x and costs are simulated (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view, run_eager_update_experiment
from repro.bench.reporting import format_table
from repro.workloads import update_trace

from benchmarks.conftest import BENCH_UPDATES, BENCH_WARMUP

GRID = [
    ("ondisk", "naive"),
    ("ondisk", "hazy"),
    ("hybrid", "hazy"),
    ("mainmemory", "naive"),
    ("mainmemory", "hazy"),
]

PAPER_UPDATES_PER_SECOND = {
    ("ondisk", "naive"): {"FC": 0.4, "DB": 2.1, "CS": 0.2},
    ("ondisk", "hazy"): {"FC": 2.0, "DB": 6.8, "CS": 0.2},
    ("hybrid", "hazy"): {"FC": 2.0, "DB": 6.6, "CS": 0.2},
    ("mainmemory", "naive"): {"FC": 5.3, "DB": 33.1, "CS": 1.8},
    ("mainmemory", "hazy"): {"FC": 49.7, "DB": 160.5, "CS": 7.2},
}


def build_table(datasets, warmup: int = BENCH_WARMUP, timed: int = BENCH_UPDATES):
    """One row per (architecture, strategy) cell with per-data-set throughput."""
    rows = []
    for architecture, strategy in GRID:
        row: dict[str, object] = {"architecture": architecture, "strategy": strategy}
        for abbrev, dataset in datasets.items():
            result = run_eager_update_experiment(
                dataset, architecture, strategy, warmup=warmup, timed=timed
            )
            row[f"{abbrev}_updates_per_s"] = round(result.simulated_ops_per_second, 1)
            row[f"{abbrev}_paper"] = PAPER_UPDATES_PER_SECOND[(architecture, strategy)][abbrev]
        rows.append(row)
    return rows


def test_fig4a_table_and_shape(all_datasets, benchmark):
    figure_rows = benchmark.pedantic(lambda: build_table(all_datasets), rounds=1, iterations=1)
    print()
    print(format_table(figure_rows, title="Figure 4(A): eager Update throughput (simulated updates/s vs paper)"))
    cells = {(row["architecture"], row["strategy"]): row for row in figure_rows}
    for abbrev in ("FC", "DB", "CS"):
        column = f"{abbrev}_updates_per_s"
        # Main-memory is at least as fast as on-disk for the same strategy.
        assert cells[("mainmemory", "naive")][column] >= cells[("ondisk", "naive")][column] * 0.95
        # Hazy-MM is never slower than naive-MM, and the fastest cell overall
        # is a Hazy cell (the paper's headline claim).
        assert cells[("mainmemory", "hazy")][column] >= cells[("mainmemory", "naive")][column] * 0.95
        fastest = max(cells, key=lambda key: cells[key][column])
        assert fastest[1] == "hazy"
    for abbrev in ("FC", "DB"):
        column = f"{abbrev}_updates_per_s"
        # On the converged workloads Hazy beats naive on-disk outright; on the
        # Citeseer-like workload the paper itself reports a tie (0.2 vs 0.2)
        # because the model has not converged, so CS is excluded here.
        assert cells[("ondisk", "hazy")][column] > cells[("ondisk", "naive")][column]


def test_fig4a_cold_start_still_favours_hazy(dblife_dataset, benchmark):
    """Section 4.1.1 also reports speedups when starting from zero examples."""

    def cold_experiments():
        naive = run_eager_update_experiment(dblife_dataset, "mainmemory", "naive", warmup=0, timed=80)
        hazy = run_eager_update_experiment(dblife_dataset, "mainmemory", "hazy", warmup=0, timed=80)
        return naive, hazy

    naive, hazy = benchmark.pedantic(cold_experiments, rounds=1, iterations=1)
    assert hazy.detail["tuples_reclassified"] < naive.detail["tuples_reclassified"]


def test_fig4a_benchmark_single_hazy_update(dblife_dataset, benchmark):
    """pytest-benchmark target: one warm Hazy-MM update (train + maintain)."""
    trace = update_trace(dblife_dataset, warmup=BENCH_WARMUP, timed=2000, seed=5)
    view = build_maintained_view(
        dblife_dataset, "mainmemory", "hazy", "eager", warm_examples=trace.warm_examples()
    )
    timed = list(trace.timed_examples())
    state = {"cursor": 0}

    def one_update():
        view.absorb(timed[state["cursor"] % len(timed)])
        state["cursor"] += 1

    benchmark(one_update)


def test_fig4a_benchmark_single_naive_update(dblife_dataset, benchmark):
    """pytest-benchmark target: one warm naive-MM update, for comparison."""
    trace = update_trace(dblife_dataset, warmup=BENCH_WARMUP, timed=2000, seed=5)
    view = build_maintained_view(
        dblife_dataset, "mainmemory", "naive", "eager", warm_examples=trace.warm_examples()
    )
    timed = list(trace.timed_examples())
    state = {"cursor": 0}

    def one_update():
        view.absorb(timed[state["cursor"] % len(timed)])
        state["cursor"] += 1

    benchmark(one_update)
