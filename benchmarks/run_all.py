"""Regenerate every figure/table of the evaluation outside of pytest.

Usage::

    python benchmarks/run_all.py                    # all figures
    python benchmarks/run_all.py fig4a fig13        # a subset
    python benchmarks/run_all.py --json out.json    # machine-readable results

The table output is the set of tables recorded in EXPERIMENTS.md; ``--json``
additionally writes the aggregate results as JSON (one entry per figure with
its rows and elapsed wall time) for perf-trajectory tracking.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.reporting import format_table  # noqa: E402
from repro.workloads import citeseer_like, dblife_like, forest_like  # noqa: E402

from benchmarks import (  # noqa: E402
    bench_ablation_skiing,
    bench_durability,
    bench_fig3_dataset_stats,
    bench_fig4a_eager_update,
    bench_fig4b_lazy_all_members,
    bench_fig5_single_entity,
    bench_fig6a_hybrid_memory,
    bench_fig6b_buffer_sweep,
    bench_fig10_learning_overhead,
    bench_fig11a_scalability,
    bench_fig11b_scaleup_threads,
    bench_fig12a_feature_sensitivity,
    bench_fig12b_multiclass,
    bench_fig13_waterband,
    bench_network_serving,
    bench_range_scan,
    bench_secondary_index,
    bench_serving_throughput,
    bench_vectorized,
    bench_warm_restart,
    obs_overhead,
)
from benchmarks.conftest import BENCH_SCALE  # noqa: E402


def _datasets():
    return {
        "FC": forest_like(scale=BENCH_SCALE["forest"], seed=1),
        "DB": dblife_like(scale=BENCH_SCALE["dblife"], seed=1),
        "CS": citeseer_like(scale=BENCH_SCALE["citeseer"], seed=1),
    }


def build_figures(datasets):
    dblife = datasets["DB"]
    citeseer = datasets["CS"]
    return {
        "fig3": ("Figure 3: data set statistics", lambda: bench_fig3_dataset_stats.build_table(datasets)),
        "fig4a": ("Figure 4(A): eager update throughput", lambda: bench_fig4a_eager_update.build_table(datasets)),
        "fig4b": ("Figure 4(B): lazy All Members throughput", lambda: bench_fig4b_lazy_all_members.build_table(datasets)),
        "fig5": ("Figure 5: Single Entity reads", lambda: bench_fig5_single_entity.build_table(datasets)),
        "fig6a": ("Figure 6(A): hybrid memory usage", lambda: bench_fig6a_hybrid_memory.build_table(datasets)),
        "fig6b": ("Figure 6(B): buffer-size sweep", lambda: bench_fig6b_buffer_sweep.build_table(citeseer)),
        "fig10": ("Figure 10: learning overhead", bench_fig10_learning_overhead.build_table),
        "fig11a": ("Figure 11(A): scalability", bench_fig11a_scalability.build_table),
        "fig11b": ("Figure 11(B): thread scale-up", lambda: bench_fig11b_scaleup_threads.build_table(dblife)),
        "fig12a": ("Figure 12(A): feature-length sensitivity", bench_fig12a_feature_sensitivity.build_table),
        "fig12b": ("Figure 12(B): multiclass updates", bench_fig12b_multiclass.build_table),
        "fig13": ("Figure 13: water-band size", lambda: bench_fig13_waterband.build_table(datasets)),
        "serving": ("Serving: concurrent ViewServer vs direct engine", lambda: bench_serving_throughput.build_table(dblife)),
        "network_serving": ("Network serving: pooled wire clients, admission tail latency", lambda: bench_network_serving.build_table(dblife)),
        "range_scan": ("Pushed-down range scan vs post-filtered scatter/gather", lambda: bench_range_scan.build_table(dblife)),
        "secondary_index": ("Secondary index vs sequential scan", bench_secondary_index.build_table),
        "vectorized": ("Vectorized batch execution", bench_vectorized.build_table),
        "warm_restart": ("Warm restart vs cold bulk load", bench_warm_restart.build_table),
        "durability": ("Durability: incremental checkpoints + WAL recovery", bench_durability.build_table),
        "ablation_alpha": ("Ablation: alpha sensitivity", lambda: bench_ablation_skiing.build_alpha_table(dblife)),
        "ablation_skiing": ("Ablation: Skiing vs optimal schedule", lambda: bench_ablation_skiing.build_ratio_table(dblife)),
    }


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "figures", nargs="*", help="subset of figure names to run (default: all)"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write aggregate results as machine-readable JSON to PATH",
    )
    return parser.parse_args(argv)


def main(argv: list[str]) -> None:
    args = parse_args(argv)
    datasets = _datasets()
    figures = build_figures(datasets)
    unknown = [name for name in args.figures if name not in figures]
    if unknown:
        raise SystemExit(f"unknown figures {unknown}; available: {sorted(figures)}")
    names = args.figures or list(figures)
    report: dict[str, object] = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "bench_scale": dict(BENCH_SCALE),
        "figures": {},
    }
    for name in names:
        title, builder = figures[name]
        start = time.perf_counter()
        rows = builder()
        elapsed = time.perf_counter() - start
        report["figures"][name] = {
            "title": title,
            "elapsed_seconds": round(elapsed, 3),
            "rows": rows,
        }
        print()
        print(format_table(rows, title=f"{title}   [{elapsed:.1f}s]"))
    # Observability health rides outside "figures" so the drift gate
    # (repro.bench.compare flattens figures only) never keys on it.
    report["metrics"] = obs_overhead.build_report()
    print()
    print(
        format_table(
            [report["metrics"]], title="Observability overhead (enabled vs disabled)"
        )
    )
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, default=str) + "\n")
        print(f"\nwrote JSON results for {len(report['figures'])} figure(s) to {path}")


if __name__ == "__main__":
    main(sys.argv[1:])
