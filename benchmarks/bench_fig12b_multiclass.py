"""Figure 12(B): multiclass eager update throughput vs number of labels.

The paper coalesces Forest's classes to vary the label count from 2 to 7 and
measures eager update throughput for Naive-MM and Hazy-MM, showing that Hazy
keeps its order-of-magnitude advantage as the number of classes grows
(sequential one-versus-all: every update touches every per-class view).
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.maintainers import HazyEagerMaintainer, NaiveEagerMaintainer
from repro.core.multiclass_view import MulticlassClassificationView
from repro.core.stores import InMemoryEntityStore
from repro.workloads.synth_dense import DenseDatasetGenerator

LABEL_COUNTS = (2, 3, 4, 5, 6, 7)
ENTITIES = 800
WARM_EXAMPLES = 300
TIMED_EXAMPLES = 80


def _coalesced_label(label: int, classes: int) -> int:
    """Coalesce Forest's 7 classes down to ``classes`` labels, as the paper does."""
    return label % classes


def _run(strategy: str, classes: int) -> float:
    generator = DenseDatasetGenerator(dimensions=54, class_count=7, seed=11)
    data = generator.generate_list(ENTITIES)
    entities = [(ex.entity_id, ex.features) for ex in data]
    labels = {ex.entity_id: _coalesced_label(ex.multiclass_label, classes) for ex in data}
    maintainer_factory = (
        (lambda store: HazyEagerMaintainer(store))
        if strategy == "hazy"
        else (lambda store: NaiveEagerMaintainer(store))
    )
    view = MulticlassClassificationView(
        labels=list(range(classes)),
        store_factory=lambda: InMemoryEntityStore(feature_norm_q=2.0),
        maintainer_factory=maintainer_factory,
    )
    view.bulk_load(entities)
    stream = data[: WARM_EXAMPLES + TIMED_EXAMPLES]
    for example in stream[:WARM_EXAMPLES]:
        view.absorb_example(example.entity_id, example.features, labels[example.entity_id])
    before = view.total_simulated_update_seconds()
    for example in stream[WARM_EXAMPLES:]:
        view.absorb_example(example.entity_id, example.features, labels[example.entity_id])
    elapsed = view.total_simulated_update_seconds() - before
    return TIMED_EXAMPLES / max(elapsed, 1e-12)


def build_table():
    rows = []
    for classes in LABEL_COUNTS:
        rows.append(
            {
                "labels": classes,
                "naive_mm_updates_per_s": round(_run("naive", classes), 1),
                "hazy_mm_updates_per_s": round(_run("hazy", classes), 1),
            }
        )
    for row in rows:
        row["hazy_speedup"] = round(
            row["hazy_mm_updates_per_s"] / max(row["naive_mm_updates_per_s"], 1e-9), 1
        )
    return rows


def test_fig12b_multiclass_updates(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 12(B): multiclass eager updates/s vs #labels (main-memory)"))
    # Hazy stays faster than naive at every label count.
    for row in rows:
        assert row["hazy_mm_updates_per_s"] > row["naive_mm_updates_per_s"]
    # Naive throughput decreases as the number of labels grows (every update
    # rescans the table once per binary view).
    assert rows[0]["naive_mm_updates_per_s"] > rows[-1]["naive_mm_updates_per_s"]
    # The advantage holds at the largest label count (the paper's key observation).
    assert rows[-1]["hazy_speedup"] > 2.0
