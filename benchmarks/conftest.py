"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark works on scaled-down versions of the paper's data sets (see
``repro.workloads.datasets``); the scales below keep the whole suite runnable
in a few minutes on a laptop while preserving the qualitative shape of each
figure.  Each ``bench_figXX_*.py`` module also exposes a ``build_table()``
function so ``benchmarks/run_all.py`` can regenerate the EXPERIMENTS.md
numbers outside of pytest.
"""

from __future__ import annotations

import pytest

from repro.workloads import citeseer_like, dblife_like, forest_like

#: Scale factors applied to the default (already laptop-sized) data sets.
BENCH_SCALE = {"forest": 0.5, "dblife": 0.8, "citeseer": 0.4}
#: Warm-up examples before timing, per data set (the paper warms with 12k).
BENCH_WARMUP = 600
#: Timed updates per experiment (the paper times 3k).
BENCH_UPDATES = 150


@pytest.fixture(scope="session")
def forest_dataset():
    return forest_like(scale=BENCH_SCALE["forest"], seed=1)


@pytest.fixture(scope="session")
def dblife_dataset():
    return dblife_like(scale=BENCH_SCALE["dblife"], seed=1)


@pytest.fixture(scope="session")
def citeseer_dataset():
    return citeseer_like(scale=BENCH_SCALE["citeseer"], seed=1)


@pytest.fixture(scope="session")
def all_datasets(forest_dataset, dblife_dataset, citeseer_dataset):
    return {"FC": forest_dataset, "DB": dblife_dataset, "CS": citeseer_dataset}
