"""Warm restart vs cold bulk load: the checkpoint/recovery gate.

A serving process that dies loses nothing *logical* — the base tables still
hold every entity and example — but the seed system paid a full cold start to
get back: re-featurize every entity, retrain, re-classify, re-cluster, once
for the view's direct maintainer and once per shard.  The checkpoint
subsystem (``src/repro/persist``) writes the derived state — per-entity ε
values, labels, the water-band watermarks of Lemma 3.1, the model vector and
the epoch clock — so a restart imports it and replays only post-checkpoint
churn.

The gate enforced here:

* warm restart is **>= 5x cheaper** in simulated seconds than the cold path
  on the main-memory architecture (the paper's Hazy-MM default), and strictly
  cheaper on the I/O-bound architectures (where both paths pay the same heap
  page writes, so the win is the avoided dot products and sort);
* post-recovery answers are **bit-identical**: same ``contents()`` map and
  the same ``top_k`` margins to the last bit (the snapshot codec round-trips
  floats exactly).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Database, HazyEngine
from repro.bench.reporting import format_table
from repro.workloads import SparseCorpusGenerator

ENTITIES = 900
EXAMPLES = 60
GRID = ("mainmemory", "ondisk", "hybrid")
#: Gate thresholds per architecture (simulated-seconds speedup, cold / warm).
MIN_SPEEDUP = {"mainmemory": 5.0, "ondisk": 1.2, "hybrid": 1.2}

DDL = """
CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
ENTITIES FROM Papers KEY id
LABELS FROM Paper_Area LABEL label
EXAMPLES FROM Example_Papers KEY id LABEL label
FEATURE FUNCTION tf_bag_of_words
USING SVM
"""


def _corpus():
    generator = SparseCorpusGenerator(
        vocabulary_size=600, nonzeros_per_document=12, positive_fraction=0.35, seed=17
    )
    return generator.generate_list(ENTITIES)


def _build_database(corpus) -> Database:
    """Base tables with every entity and example row already present."""
    db = Database()
    db.execute("CREATE TABLE papers (id integer PRIMARY KEY, title text)")
    db.execute("CREATE TABLE paper_area (label text PRIMARY KEY)")
    db.execute("CREATE TABLE example_papers (id integer PRIMARY KEY, label text)")
    db.execute("INSERT INTO paper_area (label) VALUES ('database'), ('other')")
    db.executemany(
        "INSERT INTO papers (id, title) VALUES (?, ?)",
        [(doc.entity_id, doc.text) for doc in corpus],
    )
    db.executemany(
        "INSERT INTO example_papers (id, label) VALUES (?, ?)",
        [
            (doc.entity_id, "database" if doc.label == 1 else "other")
            for doc in corpus[:EXAMPLES]
        ],
    )
    return db


def _startup_cost(db: Database, view, server) -> float:
    """Simulated seconds one start-up path charged, across every ledger it touched."""
    cost = db.pool.stats.simulated_seconds + server.simulated_seconds()
    if view.maintainer._loaded:
        cost += view.maintainer.store.stats.simulated_seconds
    return cost


def run_restart_experiment(architecture: str, checkpoint_dir: str | Path, corpus=None) -> dict:
    """One cold start + checkpoint + one warm restart; returns the comparison row."""
    corpus = corpus if corpus is not None else _corpus()

    # ---- cold path: CREATE CLASSIFICATION VIEW + serve (full featurize/classify)
    cold_db = _build_database(corpus)
    cold_base = cold_db.pool.stats.simulated_seconds
    cold_engine = HazyEngine(cold_db, architecture=architecture, strategy="hazy", approach="eager")
    cold_db.execute(DDL)
    cold_view = cold_engine.view("Labeled_Papers")
    cold_server = cold_engine.serve("Labeled_Papers")
    cold_server.flush()
    cold_cost = _startup_cost(cold_db, cold_view, cold_server) - cold_base

    before_contents = cold_server.contents()
    before_top = cold_server.top_k(25)
    info = cold_server.checkpoint(checkpoint_dir)
    cold_server.close()

    # ---- warm path: a "new process" — same base tables, state from the snapshot
    warm_db = _build_database(corpus)
    warm_base = warm_db.pool.stats.simulated_seconds
    warm_engine = HazyEngine(warm_db, architecture=architecture, strategy="hazy", approach="eager")
    warm_server = warm_engine.serve("Labeled_Papers", restore_from=checkpoint_dir)
    warm_view = warm_engine.view("Labeled_Papers")
    warm_cost = _startup_cost(warm_db, warm_view, warm_server) - warm_base

    after_contents = warm_server.contents()
    after_top = warm_server.top_k(25)
    warm_server.close()

    identical = before_contents == after_contents and before_top == after_top
    speedup = cold_cost / warm_cost if warm_cost > 0 else float("inf")
    return {
        "architecture": architecture,
        "entities": len(before_contents),
        "cold_simulated_s": round(cold_cost, 6),
        "warm_simulated_s": round(warm_cost, 6),
        "speedup": round(speedup, 2),
        "snapshot_kib": round(info["bytes"] / 1024.0, 1),
        "identical": int(identical),
        "min_speedup": MIN_SPEEDUP[architecture],
    }


def build_table(corpus=None) -> list[dict]:
    corpus = corpus if corpus is not None else _corpus()
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for architecture in GRID:
            rows.append(
                run_restart_experiment(architecture, Path(tmp) / architecture, corpus=corpus)
            )
    return rows


def test_warm_restart_gate(benchmark, tmp_path):
    """The PR gate: >= 5x cheaper on Hazy-MM, cheaper everywhere, identical answers."""
    corpus = _corpus()
    rows = benchmark.pedantic(lambda: build_table(corpus), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Warm restart vs cold bulk load (simulated seconds)"))
    by_architecture = {row["architecture"]: row for row in rows}
    for architecture, row in by_architecture.items():
        assert row["identical"] == 1, f"{architecture}: post-recovery answers differ"
        assert row["speedup"] >= MIN_SPEEDUP[architecture], (
            f"{architecture}: warm restart speedup {row['speedup']}x is below the "
            f"{MIN_SPEEDUP[architecture]}x gate"
        )


def test_warm_restart_resumes_serving(tmp_path):
    """After a warm restart the pipeline keeps absorbing writes and answering reads."""
    corpus = _corpus()[:300]
    db = _build_database(corpus)
    engine = HazyEngine(db, architecture="mainmemory", strategy="hazy", approach="eager")
    db.execute(DDL)
    server = engine.serve("Labeled_Papers")
    server.flush()
    server.checkpoint(tmp_path / "ckpt")
    server.close()

    restart_db = _build_database(corpus)
    restart_engine = HazyEngine(
        restart_db, architecture="mainmemory", strategy="hazy", approach="eager"
    )
    restored = restart_engine.serve("Labeled_Papers", restore_from=tmp_path / "ckpt")
    session = restored.session()
    # Fresh example rows (ids past the EXAMPLES prefix already in the table).
    for doc in corpus[EXAMPLES : EXAMPLES + 10]:
        session.insert_example(doc.entity_id, "database" if doc.label == 1 else "other")
    labels = {session.label_of(doc.entity_id) for doc in corpus[:20]}
    assert labels <= {-1, 1}
    assert restored.epoch > 0
    restored.close()
