"""Figure 6(B): Single Entity read rate vs hybrid buffer size, for models with
different fractions of tuples inside the water band (S1 / S10 / S50).

The paper varies the hybrid's buffer from 0.5% to 100% of the entities under
three models that leave 1%, 10% and 50% of the tuples between low and high
water, and shows that once the buffer covers the in-band tuples the read rate
approaches the main-memory architecture.

The reproduction constructs the S-fraction models directly: after warming a
model, the water band is widened artificially until the requested fraction of
tuples falls inside it, then the buffer sweep is run.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.workloads import read_trace, update_trace

BUFFER_FRACTIONS = (0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0)
BAND_FRACTIONS = {"S1": 0.01, "S10": 0.10, "S50": 0.50}


def _force_band_fraction(view, fraction: float) -> None:
    """Widen the maintainer's water band until ``fraction`` of tuples fall inside it."""
    store = view.maintainer.store
    eps_values = sorted(record.eps for record in store.scan_all())
    count = len(eps_values)
    inside = max(1, int(fraction * count))
    center = count // 2
    low_index = max(0, center - inside // 2)
    high_index = min(count - 1, low_index + inside - 1)
    tracker = view.maintainer.tracker
    tracker._low = eps_values[low_index]
    tracker._high = eps_values[high_index]


def build_table(dataset, reads: int = 1500):
    trace = update_trace(dataset, warmup=400, timed=0, seed=4)
    ids = read_trace(dataset, reads, seed=6)
    rows = []
    for band_name, band_fraction in BAND_FRACTIONS.items():
        for buffer_fraction in BUFFER_FRACTIONS:
            view = build_maintained_view(
                dataset,
                "hybrid",
                "hazy",
                "lazy",
                buffer_fraction=buffer_fraction,
                warm_examples=trace.warm_examples(),
            )
            _force_band_fraction(view, band_fraction)
            store = view.store
            start = store.cost_snapshot()
            for entity_id in ids:
                view.maintainer.read_single(entity_id)
            simulated = store.cost_snapshot() - start
            rows.append(
                {
                    "band_model": band_name,
                    "buffer_pct": round(buffer_fraction * 100, 1),
                    "reads_per_s": round(reads / max(simulated, 1e-12), 0),
                    "epsmap_hits": view.maintainer.stats.epsmap_hits,
                    "disk_lookups": view.store.disk_served,
                }
            )
    return rows


def test_fig6b_buffer_sweep(citeseer_dataset, benchmark):
    rows = benchmark.pedantic(lambda: build_table(citeseer_dataset), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 6(B): Single Entity reads/s vs hybrid buffer size (CS-like)"))
    by_cell = {(row["band_model"], row["buffer_pct"]): row for row in rows}

    # With a 1% band (S1), even the smallest buffer approaches the big-buffer rate.
    s1_small = by_cell[("S1", 0.5)]["reads_per_s"]
    s1_large = by_cell[("S1", 100.0)]["reads_per_s"]
    assert s1_small >= 0.5 * s1_large

    # With a 50% band (S50), a small buffer is much slower than a full buffer —
    # the curve of the paper's Figure 6(B).
    s50_small = by_cell[("S50", 0.5)]["reads_per_s"]
    s50_large = by_cell[("S50", 100.0)]["reads_per_s"]
    assert s50_small < s50_large

    # For every band model, the read rate is monotone (within tolerance) in the
    # buffer size once the buffer exceeds the band.
    for band_name in BAND_FRACTIONS:
        small = by_cell[(band_name, 0.5)]["reads_per_s"]
        large = by_cell[(band_name, 100.0)]["reads_per_s"]
        assert large >= small * 0.99
