"""Pushed-down range predicates vs post-filtered scatter/gather: the plan gate.

``SELECT id FROM v WHERE class = 1 AND id >= k`` used to be answered by
materializing the *whole* served view (scatter/gather ``contents()`` — one
``read_single`` per entity, statement overhead included) and post-filtering
the rows client-side.  The plan-first query layer pushes the predicate into
the serving layer as a real shard operator: every shard runs
``read_range`` over its own eps-clustered store, applying the key filter
before any classification work, under one coherent epoch.

The gate enforced here: the pushed-down read is **>= 2x cheaper** in
simulated seconds than the post-filter path, with identical rows.  Both
paths run through plain SQL on the same served view, so the comparison is
end-to-end (parser, planner, plan walk, server, shards).
"""

from __future__ import annotations

import json

import repro
from repro.bench.reporting import format_table
from repro.features.base import FeatureFunction
from repro.persist.snapshot import decode_vector, encode_vector
from repro.workloads import dblife_like

ENTITIES = 800
EXAMPLES = 120
SHARD_GRID = (2, 4)
MIN_SPEEDUP = 2.0


class PreFeaturizedColumn(FeatureFunction):
    """Decode a JSON-encoded sparse vector stored in the ``features`` column."""

    name = "prefeaturized"
    norm_q = 1.0

    def compute_feature(self, row):
        return decode_vector(json.loads(row["features"]))


def _build_portal(dataset):
    """SQL-only portal: base tables + CREATE CLASSIFICATION VIEW over the dataset."""
    subset = dataset.entities[:ENTITIES]
    conn = repro.connect(architecture="mainmemory", strategy="hazy", approach="eager")
    conn.engine.registry.register("prefeaturized", PreFeaturizedColumn)
    conn.execute("CREATE TABLE entities (id integer PRIMARY KEY, features text)")
    conn.execute("CREATE TABLE examples (id integer, label integer)")
    conn.executemany(
        "INSERT INTO entities (id, features) VALUES (?, ?)",
        [
            (entity_id, json.dumps(encode_vector(features)))
            for entity_id, features in subset
        ],
    )
    conn.executemany(
        "INSERT INTO examples (id, label) VALUES (?, ?)",
        [
            (entity_id, dataset.labels[entity_id])
            for entity_id, _ in subset[:EXAMPLES]
        ],
    )
    conn.execute(
        "CREATE CLASSIFICATION VIEW labeled KEY id "
        "ENTITIES FROM entities KEY id "
        "EXAMPLES FROM examples KEY id LABEL label "
        "FEATURE FUNCTION prefeaturized USING SVM"
    )
    return conn


def run_range_scan_experiment(num_shards: int, dataset=None) -> dict:
    """One served view; measure pushed-down vs post-filtered range read."""
    dataset = dataset if dataset is not None else dblife_like(scale=0.5, seed=1)
    conn = _build_portal(dataset)
    try:
        conn.execute(f"SERVE VIEW labeled WITH (shards = {num_shards})")
        server = conn.engine.view("labeled").server
        server.flush()
        members = sorted(
            row["id"]
            for row in conn.execute("SELECT id FROM labeled WHERE class = 1").fetchall()
        )
        assert members, "the warm model must produce a non-empty positive class"
        low = members[len(members) // 2]

        # Pushed down: the planner routes this through ServedRangeScan.
        start = server.shards.simulated_seconds()
        pushed_rows = conn.execute(
            "SELECT id FROM labeled WHERE class = 1 AND id >= ? ORDER BY id", (low,)
        ).fetchall()
        pushed_cost = server.shards.simulated_seconds() - start

        # The seed's access path: materialize the full view, filter client-side.
        start = server.shards.simulated_seconds()
        everything = conn.execute("SELECT * FROM labeled").fetchall()
        filtered = sorted(
            row["id"]
            for row in everything
            if row["class"] == 1 and row["id"] >= low
        )
        post_cost = server.shards.simulated_seconds() - start

        pushed_ids = [row["id"] for row in pushed_rows]
        identical = pushed_ids == filtered
        speedup = post_cost / pushed_cost if pushed_cost > 0 else float("inf")
        conn.execute("STOP SERVING labeled")
        return {
            "shards": num_shards,
            "entities": len(everything),
            "in_class": len(members),
            "in_range": len(pushed_ids),
            "pushed_simulated_s": round(pushed_cost, 6),
            "postfilter_simulated_s": round(post_cost, 6),
            "speedup": round(speedup, 2),
            "identical": int(identical),
            "min_speedup": MIN_SPEEDUP,
        }
    finally:
        conn.close()


def build_table(dataset=None) -> list[dict]:
    dataset = dataset if dataset is not None else dblife_like(scale=0.5, seed=1)
    return [run_range_scan_experiment(shards, dataset) for shards in SHARD_GRID]


def test_range_scan_gate(benchmark):
    """The PR gate: >= 2x cheaper than post-filtering, byte-identical rows."""
    dataset = dblife_like(scale=0.5, seed=1)
    rows = benchmark.pedantic(lambda: build_table(dataset), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows, title="Pushed-down range scan vs post-filtered scatter/gather"
        )
    )
    for row in rows:
        assert row["identical"] == 1, f"shards={row['shards']}: rows differ"
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"shards={row['shards']}: pushed-down range scan speedup "
            f"{row['speedup']}x is below the {MIN_SPEEDUP}x gate"
        )
