"""Figure 5: Single Entity read throughput (reads/second).

Paper's reported numbers:

    Arch      Eager FC/DB/CS        Lazy FC/DB/CS
    OD        6.7k / 6.8k / 6.6k    5.9k / 6.3k / 5.7k
    Hybrid   13.4k / 13.0k / 12.7k 13.4k / 13.6k / 12.2k
    MM       13.5k / 13.7k / 12.7k 13.4k / 13.5k / 12.2k

Reproduced claims: the hybrid reaches ~the main-memory read rate (97% in the
paper) while holding only ~1% of the entities in memory, and both are faster
than the pure on-disk architecture.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view, run_single_entity_experiment
from repro.bench.reporting import format_table
from repro.workloads import read_trace, update_trace

from benchmarks.conftest import BENCH_WARMUP

PAPER_READS_PER_SECOND = {
    ("ondisk", "eager"): {"FC": 6700, "DB": 6800, "CS": 6600},
    ("ondisk", "lazy"): {"FC": 5900, "DB": 6300, "CS": 5700},
    ("hybrid", "eager"): {"FC": 13400, "DB": 13000, "CS": 12700},
    ("hybrid", "lazy"): {"FC": 13400, "DB": 13600, "CS": 12200},
    ("mainmemory", "eager"): {"FC": 13500, "DB": 13700, "CS": 12700},
    ("mainmemory", "lazy"): {"FC": 13400, "DB": 13500, "CS": 12200},
}


def build_table(datasets, warmup: int = BENCH_WARMUP, reads: int = 2000):
    rows = []
    for architecture in ("ondisk", "hybrid", "mainmemory"):
        for approach in ("eager", "lazy"):
            row: dict[str, object] = {"architecture": architecture, "approach": approach}
            for abbrev, dataset in datasets.items():
                result = run_single_entity_experiment(
                    dataset,
                    architecture,
                    "hazy",
                    approach,
                    warmup=warmup,
                    reads=reads,
                    buffer_fraction=0.01,
                )
                row[f"{abbrev}_reads_per_s"] = round(result.simulated_ops_per_second, 0)
                row[f"{abbrev}_paper"] = PAPER_READS_PER_SECOND[(architecture, approach)][abbrev]
            rows.append(row)
    return rows


def test_fig5_table_and_shape(all_datasets, benchmark):
    rows = benchmark.pedantic(lambda: build_table(all_datasets), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 5: Single Entity read throughput (simulated reads/s vs paper)"))
    cells = {(row["architecture"], row["approach"]): row for row in rows}
    for abbrev in ("FC", "DB", "CS"):
        column = f"{abbrev}_reads_per_s"
        for approach in ("eager", "lazy"):
            ondisk = cells[("ondisk", approach)][column]
            hybrid = cells[("hybrid", approach)][column]
            mainmemory = cells[("mainmemory", approach)][column]
            # The hybrid is always faster than the on-disk architecture ...
            assert hybrid > ondisk
            # ... and reaches at least 90% of the main-memory read rate
            # (97% in the paper) while holding only ~1% of the entities.
            assert hybrid >= 0.9 * mainmemory


def test_fig5_benchmark_hybrid_read(dblife_dataset, benchmark):
    """pytest-benchmark target: one hybrid Single Entity read (warm model)."""
    trace = update_trace(dblife_dataset, warmup=BENCH_WARMUP, timed=0, seed=3)
    view = build_maintained_view(
        dblife_dataset, "hybrid", "hazy", "eager", warm_examples=trace.warm_examples()
    )
    ids = read_trace(dblife_dataset, 4096, seed=11)
    state = {"cursor": 0}

    def one_read():
        view.maintainer.read_single(ids[state["cursor"] % len(ids)])
        state["cursor"] += 1

    benchmark(one_read)
