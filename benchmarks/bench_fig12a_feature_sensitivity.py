"""Figure 12(A): All Members (lazy) read rate vs feature length.

The paper scales the number of random Fourier features from 300 to 1500 and
measures the lazy All Members rate for the naive and Hazy strategies on both
architectures, finding that Hazy's advantage *grows* with feature length
because it avoids dot products that have become more expensive.

The reproduction uses the same random-feature construction
(:class:`repro.learn.random_features.RandomFourierFeatures`) over a dense base
data set and sweeps the output dimensionality.
"""

from __future__ import annotations

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.learn.kernels import GaussianKernel
from repro.learn.random_features import RandomFourierFeatures
from repro.learn.sgd import TrainingExample
from repro.workloads.datasets import GeneratedDataset
from repro.workloads.synth_dense import DenseDatasetGenerator

FEATURE_LENGTHS = (300, 600, 900, 1200, 1500)
BASE_ENTITIES = 500


def _random_feature_dataset(length: int, seed: int = 3) -> GeneratedDataset:
    """A dense base data set lifted into ``length`` random Fourier features."""
    from repro.workloads.datasets import DATASETS

    generator = DenseDatasetGenerator(dimensions=10, class_count=2, seed=seed)
    base = generator.generate_list(BASE_ENTITIES)
    rff = RandomFourierFeatures(10, length, kernel=GaussianKernel(gamma=1.0), seed=seed)
    entities = [(ex.entity_id, rff.transform(ex.features)) for ex in base]
    labels = {ex.entity_id: ex.label for ex in base}
    return GeneratedDataset(spec=DATASETS["forest"], entities=entities, labels=labels)


def build_table(scans: int = 6, warm: int = 150):
    rows = []
    for length in FEATURE_LENGTHS:
        dataset = _random_feature_dataset(length)
        warm_examples = [
            TrainingExample(entity_id, features, dataset.labels[entity_id])
            for entity_id, features in dataset.entities[:warm]
        ]
        row: dict[str, object] = {"feature_length": length}
        for strategy in ("naive", "hazy"):
            view = build_maintained_view(
                dataset, "mainmemory", strategy, "lazy", warm_examples=warm_examples
            )
            store = view.store
            start = store.cost_snapshot()
            for _ in range(scans):
                view.maintainer.read_all_members(1)
            simulated = store.cost_snapshot() - start
            row[f"{strategy}_scans_per_s"] = round(scans / max(simulated, 1e-12), 1)
        row["hazy_speedup"] = round(
            row["hazy_scans_per_s"] / max(row["naive_scans_per_s"], 1e-9), 1
        )
        rows.append(row)
    return rows


def test_fig12a_feature_sensitivity(benchmark):
    rows = benchmark.pedantic(lambda: build_table(), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 12(A): lazy All Members rate vs feature length (main-memory)"))
    # Naive throughput decays as features get longer (each scan pays longer dot products).
    naive_rates = [row["naive_scans_per_s"] for row in rows]
    assert naive_rates[0] > naive_rates[-1]
    # Hazy is faster than naive at every feature length ...
    for row in rows:
        assert row["hazy_scans_per_s"] > row["naive_scans_per_s"]
    # ... and its relative advantage grows with the feature length.
    assert rows[-1]["hazy_speedup"] > rows[0]["hazy_speedup"]
