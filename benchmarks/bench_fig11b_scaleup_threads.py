"""Figure 11(B): Single Entity read scale-up with the number of threads.

The paper drives the main-memory architecture from 1-32 threads on an 8-core
machine and reports that read throughput scales up to ~16 threads (42.7k
reads/s) because the Single Entity read path needs no locking.

The reproduction drives concurrent readers with a Python thread pool.  Because
of the GIL, *wall-clock* scaling is limited; what the benchmark demonstrates
(and asserts) is that concurrent readers produce identical answers with no
locking, that total throughput does not collapse as threads are added, and it
reports the measured reads/s per thread count for EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench.harness import build_maintained_view
from repro.bench.reporting import format_table
from repro.workloads import read_trace, update_trace

THREAD_COUNTS = (1, 2, 4, 8, 16)
READS_PER_RUN = 4000


def build_table(dataset):
    trace = update_trace(dataset, warmup=400, timed=0, seed=5)
    view = build_maintained_view(
        dataset, "mainmemory", "hazy", "eager", warm_examples=trace.warm_examples()
    )
    ids = read_trace(dataset, READS_PER_RUN, seed=9)
    expected = {entity_id: view.maintainer.read_single(entity_id) for entity_id in set(ids)}

    rows = []
    for threads in THREAD_COUNTS:
        chunks = [ids[i::threads] for i in range(threads)]

        def worker(chunk):
            results = []
            for entity_id in chunk:
                results.append((entity_id, view.maintainer.read_single(entity_id)))
            return results

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=threads) as pool:
            all_results = [item for chunk_result in pool.map(worker, chunks) for item in chunk_result]
        elapsed = time.perf_counter() - start
        consistent = all(expected[entity_id] == label for entity_id, label in all_results)
        rows.append(
            {
                "threads": threads,
                "reads": len(ids),
                "wall_reads_per_s": round(len(ids) / elapsed, 0),
                "answers_consistent": consistent,
            }
        )
    return rows


def test_fig11b_thread_scaleup(dblife_dataset, benchmark):
    rows = benchmark.pedantic(lambda: build_table(dblife_dataset), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 11(B): Single Entity reads vs #threads (main-memory, wall clock)"))
    assert all(row["answers_consistent"] for row in rows)
    # Throughput must not collapse as readers are added (lock-free read path);
    # the GIL prevents real speedups, so the bar is "within 3x of single-threaded".
    single = rows[0]["wall_reads_per_s"]
    for row in rows[1:]:
        assert row["wall_reads_per_s"] > single / 3.0
