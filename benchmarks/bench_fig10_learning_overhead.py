"""Figure 10: overhead and quality of learning inside the RDBMS.

The paper compares SVMLight (a batch solver), a file-based SGD implementation,
and Hazy (SGD driven through the RDBMS, one update statement per example) on
MAGIC, ADULT and FOREST, reporting precision/recall and training time:

    Data set   SVMLight P/R  Time     SGD P/R   File    Hazy
    MAGIC      74.4/63.4     9.4s     74.1/62.3  0.3s    0.7s
    ADULT      86.7/92.7    11.4s     85.9/92.9  0.7s    1.1s
    FOREST     75.1/77.0   256.7m     71.3/80.0  52.9s   17.3m

Reproduced claims: the batch solver does far more work than single-pass SGD at
comparable quality, and driving the same SGD through the engine (triggers,
feature lookups, view maintenance) adds overhead over raw file-based SGD but
stays far cheaper than the batch solver.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.core.maintainers import HazyEagerMaintainer
from repro.core.stores import InMemoryEntityStore
from repro.learn.batch import BatchSubgradientSVM
from repro.learn.metrics import precision_recall
from repro.learn.sgd import SGDTrainer, TrainingExample
from repro.workloads.synth_dense import DenseDatasetGenerator

PAPER_ROWS = {
    "MAGIC": {"svmlight_pr": "74.4/63.4", "sgd_pr": "74.1/62.3", "svmlight_time": "9.4s", "file_time": "0.3s", "hazy_time": "0.7s"},
    "ADULT": {"svmlight_pr": "86.7/92.7", "sgd_pr": "85.9/92.9", "svmlight_time": "11.4s", "file_time": "0.7s", "hazy_time": "1.1s"},
    "FOREST": {"svmlight_pr": "75.1/77.0", "sgd_pr": "71.3/80.0", "svmlight_time": "256.7m", "file_time": "52.9s", "hazy_time": "17.3m"},
}

#: Synthetic stand-ins: (dimensions, classes, entity count) shaped like each UCI set.
#: Forest is binarized (largest class vs rest) exactly as the paper does; the
#: stand-in uses two balanced prototypes so the binary task carries signal.
DATASET_SHAPES = {
    "MAGIC": (10, 2, 1500),
    "ADULT": (14, 2, 1500),
    "FOREST": (54, 2, 2500),
}


def _pr(model_predict, examples) -> tuple[float, float]:
    predicted = [model_predict(ex.features) for ex in examples]
    actual = [ex.label for ex in examples]
    return precision_recall(predicted, actual)


def build_table():
    rows = []
    for name, (dimensions, classes, count) in DATASET_SHAPES.items():
        generator = DenseDatasetGenerator(dimensions=dimensions, class_count=classes, seed=7)
        data = generator.generate_list(count)
        examples = [TrainingExample(ex.entity_id, ex.features, ex.label) for ex in data]
        split = int(0.9 * len(examples))
        train, test = examples[:split], examples[split:]

        # Batch solver (the SVMLight stand-in).
        batch = BatchSubgradientSVM(regularization=1e-3, iterations=60, tolerance=0.0)
        start = time.perf_counter()
        batch.fit(train)
        batch_seconds = time.perf_counter() - start
        batch_precision, batch_recall = _pr(batch.predict, test)

        # Single-pass SGD on raw vectors (the file-based stand-in).
        sgd = SGDTrainer(loss="svm", seed=1)
        start = time.perf_counter()
        for example in train:
            sgd.absorb(example)
        sgd_seconds = time.perf_counter() - start
        sgd_precision, sgd_recall = _pr(sgd.predict, test)

        # The same SGD driven through view maintenance (the Hazy row).
        hazy_trainer = SGDTrainer(loss="svm", seed=1)
        maintainer = HazyEagerMaintainer(InMemoryEntityStore(feature_norm_q=2.0))
        maintainer.bulk_load([(ex.entity_id, ex.features) for ex in examples], hazy_trainer.model)
        start = time.perf_counter()
        for example in train:
            maintainer.apply_model(hazy_trainer.absorb(example))
        hazy_seconds = time.perf_counter() - start

        rows.append(
            {
                "dataset": name,
                "batch_P/R": f"{batch_precision:.2f}/{batch_recall:.2f}",
                "sgd_P/R": f"{sgd_precision:.2f}/{sgd_recall:.2f}",
                "batch_wall_s": round(batch_seconds, 2),
                "sgd_wall_s": round(sgd_seconds, 3),
                "hazy_wall_s": round(hazy_seconds, 3),
                "batch_example_visits": batch.examples_visited,
                "sgd_example_visits": len(train),
                "paper_svmlight": PAPER_ROWS[name]["svmlight_pr"] + " in " + PAPER_ROWS[name]["svmlight_time"],
                "paper_sgd_file_hazy": (
                    PAPER_ROWS[name]["sgd_pr"]
                    + f" in {PAPER_ROWS[name]['file_time']} / {PAPER_ROWS[name]['hazy_time']}"
                ),
            }
        )
    return rows


def test_fig10_learning_overhead(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 10: batch solver vs SGD vs Hazy-driven SGD"))
    for row in rows:
        # The batch solver does at least an order of magnitude more example visits.
        assert row["batch_example_visits"] >= 10 * row["sgd_example_visits"]
        # And takes longer in wall-clock terms than single-pass SGD.
        assert row["batch_wall_s"] > row["sgd_wall_s"]
        # Driving the same SGD through view maintenance adds overhead over the
        # raw (file-style) SGD pass — the paper's "overhead of Hazy" column.
        assert row["hazy_wall_s"] >= row["sgd_wall_s"]
        # Quality: single-pass SGD stays in the same precision/recall ballpark
        # as the batch solver (the paper reports "as good, if not better").
        batch_p, batch_r = (float(x) for x in row["batch_P/R"].split("/"))
        sgd_p, sgd_r = (float(x) for x in row["sgd_P/R"].split("/"))
        assert abs(batch_p - sgd_p) < 0.35
        assert abs(batch_r - sgd_r) < 0.35
