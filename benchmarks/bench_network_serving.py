"""Network serving: the wire front door under a mixed multi-client workload.

Stands up a real :class:`repro.net.server.SQLServer` over a served
classification view and drives it through loopback TCP sockets, measuring
three gates the tentpole must clear:

* **bit-identical answers** — every row a network client reads (point reads,
  the full All-Members scan with ``class``/``margin`` floats, aggregates)
  must serialize identically to the same statement executed in-process on
  the same engine;
* **pooled throughput** — ``CLIENTS`` threads sharing a
  :class:`~repro.net.pool.ConnectionPool` must push at least **2x** the
  point-read throughput of a single serialized client issuing the same
  reads one at a time;
* **tail latency under pressure** — with All-Members scan clients (the
  membership read, scatter/gathered across every shard) and SQL writers
  hammering the bulk lane, the point-read p99 must stay within **3x** of
  the unloaded p99.  This is the admission controller's whole job: the bulk
  lane's slot cap keeps at most one scan executing while the weighted
  scheduler keeps granting the point lane.

Every timing column is named ``wall_*`` — over real sockets these numbers
are machine noise to the drift gate, exactly like the serving figure's
batcher columns; the deterministic columns (read/write/cell counts) anchor
the baseline.
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import repro  # noqa: E402
from repro.bench.reporting import format_table  # noqa: E402
from repro.net import ConnectionPool, SQLServer, connect  # noqa: E402
from repro.workloads import update_trace  # noqa: E402

from benchmarks.bench_serving_throughput import _sql_portal  # noqa: E402

CLIENTS = 8
POINT_READS = 600  # per throughput phase (serial and pooled alike)
P99_SAMPLES = 500  # per latency phase (unloaded and loaded alike)
SCAN_CLIENTS = 2
WRITER_CLIENTS = 2
WRITES = 80
NUM_SHARDS = 4
TIMEOUT_S = 60.0


def _setup(dataset):
    """Portal + served view + wire server; returns (conn, server, trace)."""
    trace = update_trace(dataset, warmup=400, timed=WRITES, seed=7)
    conn = _sql_portal(dataset, trace.warm_examples())
    # A 2ms coalescing window: long enough that the dispatch sleep — not
    # scheduler jitter — dominates the unloaded tail, which keeps the
    # loaded/unloaded p99 ratio a stable measure of admission quality.
    conn.execute(
        f"SERVE VIEW served_entities WITH (shards = {NUM_SHARDS}, "
        "max_read_batch = 64, max_wait_s = 0.002)"
    )
    server = SQLServer(
        conn.engine,
        # Enough slots for every pooled reader to be in flight (the batcher
        # coalesces concurrent point reads), but at most ONE scan at a time:
        # the bulk cap plus an 8:1 grant ratio protect the point-read tail.
        slots=CLIENTS,
        bulk_slot_cap=1,
        point_weight=8,
        bulk_weight=1,
        admission_timeout_s=TIMEOUT_S,
    ).start()
    return conn, server, trace


def _point_ids(dataset, count: int, stride: int = 7) -> list:
    ids = [entity_id for entity_id, _ in dataset.entities]
    return [ids[(index * stride) % len(ids)] for index in range(count)]


def _canonical(rows) -> str:
    """Bit-faithful serialization: repr-based floats expose any drift."""
    return json.dumps(rows, sort_keys=True)


def run_bit_identical(dataset, conn, server) -> dict:
    """Gate (a): network answers == in-process answers, bitwise."""
    conn.engine.view("served_entities").server.flush(timeout=120)
    local = repro.connect(engine=conn.engine)
    statements = [
        ("SELECT id, class FROM served_entities ORDER BY id", ()),
        # The top-k read carries raw float margins: the bitwise comparison
        # below is only meaningful if repr-serialized floats survive intact.
        ("SELECT id, margin FROM served_entities ORDER BY margin DESC LIMIT 25", ()),
        ("SELECT COUNT(*) FROM served_entities", ()),
    ]
    for entity_id in _point_ids(dataset, 50, stride=13):
        statements.append(
            ("SELECT id, class FROM served_entities WHERE id = ?", (entity_id,))
        )
    cells = 0
    identical = True
    with connect(server.host, server.port, timeout=TIMEOUT_S) as remote:
        for sql, params in statements:
            over_wire = remote.execute(sql, params).fetchall()
            in_process = local.execute(sql, params).fetchall()
            cells += sum(len(row) for row in in_process)
            if _canonical(over_wire) != _canonical(in_process):
                identical = False
    local.close()
    return {
        "cell": "bit-identical",
        "statements": len(statements),
        "cells_compared": cells,
        "identical": identical,
    }


def run_serial_throughput(dataset, server) -> dict:
    """Gate (b) baseline: one client, one socket, one read at a time."""
    ids = _point_ids(dataset, POINT_READS)
    with connect(server.host, server.port, timeout=TIMEOUT_S) as client:
        start = time.perf_counter()
        for entity_id in ids:
            client.execute(
                "SELECT class FROM served_entities WHERE id = ?", (entity_id,)
            ).scalar()
        wall = time.perf_counter() - start
    return {
        "cell": "serial-1-client",
        "reads": len(ids),
        "wall_reads_per_s": round(len(ids) / wall, 1),
    }


def run_pooled_throughput(dataset, server) -> dict:
    """Gate (b): CLIENTS pooled threads issuing the same point reads."""
    ids = _point_ids(dataset, POINT_READS)
    chunks = [ids[index::CLIENTS] for index in range(CLIENTS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(CLIENTS)
    with ConnectionPool(server.host, server.port, size=CLIENTS, timeout=TIMEOUT_S) as pool:

        def reader(chunk):
            try:
                barrier.wait(timeout=TIMEOUT_S)
                with pool.connection() as client:
                    for entity_id in chunk:
                        client.execute(
                            "SELECT class FROM served_entities WHERE id = ?", (entity_id,)
                        ).scalar()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(chunk,)) for chunk in chunks]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
    assert not errors, errors
    return {
        "cell": f"pooled-{CLIENTS}-clients",
        "reads": len(ids),
        "wall_reads_per_s": round(len(ids) / wall, 1),
    }


def _point_latencies(server, ids, warmup: int = 50) -> list[float]:
    """Per-read wall latencies; the first ``warmup`` reads are discarded so
    connection dialing and cold caches don't pollute the order statistic."""
    latencies = []
    with connect(server.host, server.port, timeout=TIMEOUT_S) as client:
        for index, entity_id in enumerate(list(ids[:warmup]) + list(ids)):
            start = time.perf_counter()
            client.execute(
                "SELECT class FROM served_entities WHERE id = ?", (entity_id,)
            ).scalar()
            if index >= warmup:
                latencies.append(time.perf_counter() - start)
    return latencies


def _p99_ms(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1000.0


def run_tail_latency(dataset, server, trace) -> list[dict]:
    """Gate (c): point-read p99 with and without bulk-lane pressure."""
    ids = _point_ids(dataset, P99_SAMPLES, stride=11)

    unloaded = _point_latencies(server, ids)

    # Pressure: scan clients loop the All-Members membership read (every
    # entity the model currently places in the class — a scatter/gather
    # across all shards), writers stream the timed examples — all through
    # the bulk lane, all over real sockets.
    stop = threading.Event()
    errors: list[BaseException] = []
    scans_done = [0]
    writes_done = [0]

    def scanner():
        try:
            with connect(server.host, server.port, timeout=TIMEOUT_S) as client:
                while not stop.is_set():
                    client.execute(
                        "SELECT id FROM served_entities WHERE class = 1"
                    ).fetchall()
                    scans_done[0] += 1
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    def writer(examples):
        try:
            with connect(server.host, server.port, timeout=TIMEOUT_S) as client:
                for example in examples:
                    if stop.is_set():
                        break
                    client.execute(
                        "INSERT INTO examples (id, label) VALUES (?, ?)",
                        (example.entity_id, example.label),
                    )
                    writes_done[0] += 1
                    time.sleep(0.002)  # a steady trickle, not a burst
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    timed = list(trace.timed_examples())
    pressure = [threading.Thread(target=scanner) for _ in range(SCAN_CLIENTS)]
    pressure += [
        threading.Thread(target=writer, args=(timed[index::WRITER_CLIENTS],))
        for index in range(WRITER_CLIENTS)
    ]
    # Shorter GIL quanta keep scan threads from parking the point reader for
    # a full switch interval per grant.
    previous_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        for thread in pressure:
            thread.start()
        time.sleep(0.1)  # let the scanners reach steady state
        loaded = _point_latencies(server, ids)
    finally:
        stop.set()
        for thread in pressure:
            thread.join(timeout=TIMEOUT_S)
        sys.setswitchinterval(previous_switch)
    assert not errors, errors

    unloaded_p99 = _p99_ms(unloaded)
    loaded_p99 = _p99_ms(loaded)
    return [
        {
            "cell": "point-p99-unloaded",
            "reads": len(ids),
            "wall_p99_ms": round(unloaded_p99, 3),
            "wall_median_ms": round(statistics.median(unloaded) * 1000.0, 3),
        },
        {
            "cell": "point-p99-under-pressure",
            "reads": len(ids),
            # Scan count depends on wall-clock (the scanners loop for the
            # duration of the loaded phase), so it carries the volatile prefix.
            "wall_scans": scans_done[0],
            "writes": writes_done[0],
            "wall_p99_ms": round(loaded_p99, 3),
            "wall_median_ms": round(statistics.median(loaded) * 1000.0, 3),
            "wall_p99_ratio": round(loaded_p99 / max(1e-9, unloaded_p99), 2),
        },
    ]


def build_table(dataset):
    conn, server, trace = _setup(dataset)
    try:
        serial = run_serial_throughput(dataset, server)
        pooled = run_pooled_throughput(dataset, server)
        pooled["wall_speedup_vs_serial"] = round(
            pooled["wall_reads_per_s"] / max(1e-9, serial["wall_reads_per_s"]), 2
        )
        latency_rows = run_tail_latency(dataset, server, trace)
        # Writers ran during the pressure phase; verify the wire path agreed
        # with the in-process path on the final state, floats and all.
        identical = run_bit_identical(dataset, conn, server)
        return [identical, serial, pooled, *latency_rows]
    finally:
        server.close()
        conn.close(timeout=60)


def test_network_serving_gates(dblife_dataset):
    rows = build_table(dblife_dataset)
    print()
    print(
        format_table(
            rows,
            title=(
                f"Network serving: {CLIENTS} pooled clients, "
                f"{SCAN_CLIENTS} scanners + {WRITER_CLIENTS} writers pressure"
            ),
        )
    )
    identical, serial, pooled, unloaded, loaded = rows
    assert identical["identical"] is True, (
        "network answers must be bit-identical to the in-process path"
    )
    assert pooled["wall_speedup_vs_serial"] >= 2.0, (
        f"pooled clients reached only {pooled['wall_speedup_vs_serial']}x "
        "the serialized client; the wire front door must parallelize"
    )
    assert loaded["wall_p99_ratio"] <= 3.0, (
        f"point-read p99 degraded {loaded['wall_p99_ratio']}x under scan "
        "pressure; admission lanes must protect the tail"
    )
