"""Figure 3: data-set statistics (size, #entities, #features, non-zeros).

The paper's table reports the raw statistics of Forest, DBLife and Citeseer.
This benchmark regenerates the table for the synthetic stand-ins next to the
paper's reported values, and benchmarks the corpus generator itself.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.workloads import DATASETS, SparseCorpusGenerator, generate_dataset

#: Scale used when this module is driven by run_all.py (not by the fixtures).
TABLE_SCALE = 0.4


def build_table(datasets: dict | None = None) -> list[dict[str, object]]:
    """One row per data set: generated statistics next to the paper's."""
    if datasets is None:
        datasets = {
            spec.abbreviation: generate_dataset(name, scale=TABLE_SCALE, seed=1)
            for name, spec in DATASETS.items()
        }
    rows = []
    for abbrev, dataset in datasets.items():
        row = dataset.statistics_row()
        row["abbrev"] = abbrev
        rows.append(row)
    return rows


def test_fig3_dataset_statistics_table(all_datasets, benchmark):
    rows = build_table(all_datasets)
    print()
    print(format_table(rows, title="Figure 3: data set statistics (generated vs paper)"))

    # Shape checks: sparsity ordering matches the paper's Figure 3
    # (DBLife sparsest at ~7 non-zeros; Citeseer and Forest around 60 and 54).
    by_abbrev = {row["abbrev"]: row for row in rows}
    assert by_abbrev["DB"]["generated_avg_nonzeros"] < by_abbrev["FC"]["generated_avg_nonzeros"]
    assert by_abbrev["DB"]["generated_avg_nonzeros"] < by_abbrev["CS"]["generated_avg_nonzeros"]
    assert by_abbrev["CS"]["generated_features"] > by_abbrev["DB"]["generated_features"]
    assert by_abbrev["FC"]["generated_features"] == 54

    # Benchmark the document generator (cost of producing 200 documents).
    generator = SparseCorpusGenerator(vocabulary_size=5000, nonzeros_per_document=60, seed=3)
    benchmark(lambda: generator.generate_list(200))
